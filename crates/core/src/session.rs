//! The session layer: first-class endpoints over the relay data plane.
//!
//! Everything below the session layer moves *packets*; this module moves
//! *messages of arbitrary length* between one source and one
//! destination, multiplexing thousands of such conversations over a
//! single node:
//!
//! * **Streaming** — [`SourceSession::send`] accepts any payload length,
//!   chunks it across sequenced protocol messages (each chunk rides the
//!   existing per-seq slicing path) and drives a bounded
//!   pacing/retransmit window. Chunk framing lives *inside* the AEAD
//!   plaintext, so relays cannot distinguish a 100-byte chat line from a
//!   megabyte transfer beyond packet count.
//! * [`DestSession`] — the destination-side endpoint the engine was
//!   missing: per-seq slice gathering → recombination → decryption →
//!   in-order message reassembly, guarded by the same constant-space
//!   anti-replay discipline the relays use, plus reverse-path
//!   acknowledgements and application replies.
//! * [`SessionManager`] — both endpoint kinds multiplexed at scale:
//!   sessions are sharded by session id exactly like
//!   [`crate::ShardedRelay`] shards flows (per-shard maps and
//!   [`TimerWheel`], shared atomic [`SessionStatsAtomic`]), with
//!   per-session buffer quotas so one slow or hostile session exerts
//!   backpressure on itself, never on its shard.
//!
//! Per-session state is bounded by construction: the send window holds
//! at most [`SessionConfig::window_chunks`] unacked chunks plus a
//! byte-capped queue, the receive side caps partial gathers and
//! reassembly bytes, and completed messages leave nothing behind — the
//! replay guard (watermark + bitmap) remembers delivery in constant
//! space after the per-message state is gone.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use rand::rngs::StdRng;
use rand::SeedableRng;

use slicing_codec::{coder, InfoSlice};
use slicing_crypto::SealingKey;
use slicing_graph::packets::SendInstr;
use slicing_graph::{NodeInfo, OverlayAddr};
use slicing_wire::{crc, FlowId, Packet, PacketBuilder, PacketHeader, PacketKind};

use crate::replay::ReplayGuard;
use crate::source::SourceSession;
use crate::time::Tick;
use crate::wheel::TimerWheel;

/// Timer-wheel bucket width for session shards (one bucket per daemon
/// poll period, matching the relay wheel).
const WHEEL_GRANULARITY_MS: u64 = 50;
/// Timer-wheel bucket count (12.8 s horizon; longer deadlines ride
/// across rotations).
const WHEEL_BUCKETS: usize = 256;

// ---- errors ---------------------------------------------------------------

/// Typed session-layer failures. Everything here is a *caller* problem
/// (too big, too fast, wrong id) surfaced as a `Result` — the session
/// engine itself never panics on application input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionError {
    /// The payload cannot be expressed in the available chunk space
    /// (single-packet callers: larger than
    /// [`SourceSession::max_chunk_len`]; streaming callers: more than
    /// 65 535 chunks).
    Oversize {
        /// Offered payload length.
        len: usize,
        /// Largest accepted length.
        max: usize,
    },
    /// The session's send buffer is full; retry after in-flight chunks
    /// are acknowledged. This is the per-session backpressure bound —
    /// a slow session fills its own quota, not its shard's.
    Backpressure {
        /// Bytes currently buffered (queued + in flight).
        buffered: usize,
        /// The session's buffer quota.
        quota: usize,
    },
    /// The shard's session quota is exhausted.
    TooManySessions {
        /// The per-shard limit that was hit.
        limit: usize,
    },
    /// No session with that id (closed, or never opened here).
    UnknownSession,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Oversize { len, max } => {
                write!(f, "payload of {len} bytes exceeds the limit of {max}")
            }
            SessionError::Backpressure { buffered, quota } => {
                write!(f, "send buffer full ({buffered}/{quota} bytes)")
            }
            SessionError::TooManySessions { limit } => {
                write!(f, "shard session quota ({limit}) exhausted")
            }
            SessionError::UnknownSession => write!(f, "unknown session id"),
        }
    }
}

impl std::error::Error for SessionError {}

// ---- configuration --------------------------------------------------------

/// Tunables for one session endpoint (either side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SessionConfig {
    /// Maximum unacknowledged chunks in flight (clamped to 64, the ack
    /// bitmap width).
    pub window_chunks: usize,
    /// Most fresh chunks emitted per pump; further chunks wait
    /// [`pace_ms`](SessionConfig::pace_ms) — the wheel-driven pacing
    /// that keeps one bulk sender from bursting its whole window into
    /// the first-hop queues.
    pub burst_chunks: usize,
    /// Minimum spacing between emission bursts.
    pub pace_ms: u64,
    /// Retransmit an unacknowledged chunk after this long. Must exceed
    /// the relays' gather quarantine (2 × `data_flush_ms`) or retries
    /// are swallowed as duplicates.
    pub retransmit_ms: u64,
    /// Per-session cap on buffered send bytes (queued + in flight);
    /// [`SourceSession::send`] returns [`SessionError::Backpressure`]
    /// beyond it.
    pub send_buffer_bytes: usize,
    /// Acknowledge after this many newly delivered chunks, even if the
    /// ack timer has not fired.
    pub ack_every_chunks: usize,
    /// Acknowledge pending delivery state at least this often.
    pub ack_interval_ms: u64,
    /// Per-session cap on reassembly bytes (partial and
    /// completed-but-out-of-order messages). Chunks beyond it are
    /// dropped *unacked*, so the source retries them later.
    pub reassembly_bytes: usize,
    /// Per-session cap on concurrent per-seq slice gathers.
    pub max_gathers: usize,
    /// Reap a partial slice gather after this long.
    pub gather_ttl_ms: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            window_chunks: 32,
            burst_chunks: 16,
            pace_ms: 5,
            retransmit_ms: 1_500,
            send_buffer_bytes: 512 * 1024,
            ack_every_chunks: 4,
            ack_interval_ms: 150,
            reassembly_bytes: 1024 * 1024,
            max_gathers: 256,
            gather_ttl_ms: 3_000,
        }
    }
}

impl SessionConfig {
    /// The window size actually used (the ack bitmap covers 64 seqs).
    pub(crate) fn window(&self) -> usize {
        self.window_chunks.clamp(1, 64)
    }
}

// ---- chunk framing --------------------------------------------------------
//
// Stream frames live inside the AEAD plaintext of a protocol message, so
// relays (and any observer) see only opaque fixed-shape slices. A
// plaintext that parses as none of these is a legacy raw message and is
// surfaced unchanged.

pub(crate) const FRAME_DATA: u8 = 0xD1;
pub(crate) const FRAME_ACK: u8 = 0xA1;
pub(crate) const FRAME_REPLY: u8 = 0xE1;
/// `op ‖ msg_id(4) ‖ chunk_idx(2) ‖ chunk_count(2)`.
pub(crate) const DATA_HEADER_LEN: usize = 9;

pub(crate) enum Frame<'a> {
    /// One chunk of stream message `msg_id`.
    Data {
        msg_id: u32,
        idx: u16,
        count: u16,
        chunk: &'a [u8],
    },
    /// Cumulative ack: every chunk seq `< cum` delivered; bit `i` of
    /// `bits` means seq `cum + 1 + i` delivered too.
    Ack { cum: u32, bits: u64 },
    /// A destination-originated application reply.
    Reply { id: u32, payload: &'a [u8] },
}

pub(crate) fn data_frame(msg_id: u32, idx: u16, count: u16, chunk: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(DATA_HEADER_LEN + chunk.len());
    out.push(FRAME_DATA);
    out.extend_from_slice(&msg_id.to_le_bytes());
    out.extend_from_slice(&idx.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out.extend_from_slice(chunk);
    out
}

pub(crate) fn ack_frame(cum: u32, bits: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(13);
    out.push(FRAME_ACK);
    out.extend_from_slice(&cum.to_le_bytes());
    out.extend_from_slice(&bits.to_le_bytes());
    out
}

pub(crate) fn reply_frame(id: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(5 + payload.len());
    out.push(FRAME_REPLY);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

pub(crate) fn parse_frame(plain: &[u8]) -> Option<Frame<'_>> {
    match *plain.first()? {
        FRAME_DATA if plain.len() >= DATA_HEADER_LEN => {
            let msg_id = u32::from_le_bytes(plain[1..5].try_into().ok()?);
            let idx = u16::from_le_bytes(plain[5..7].try_into().ok()?);
            let count = u16::from_le_bytes(plain[7..9].try_into().ok()?);
            if count == 0 || idx >= count {
                return None;
            }
            Some(Frame::Data {
                msg_id,
                idx,
                count,
                chunk: &plain[DATA_HEADER_LEN..],
            })
        }
        FRAME_ACK if plain.len() == 13 => Some(Frame::Ack {
            cum: u32::from_le_bytes(plain[1..5].try_into().ok()?),
            bits: u64::from_le_bytes(plain[5..13].try_into().ok()?),
        }),
        FRAME_REPLY if plain.len() >= 5 => Some(Frame::Reply {
            id: u32::from_le_bytes(plain[1..5].try_into().ok()?),
            payload: &plain[5..],
        }),
        _ => None,
    }
}

// ---- source-side streaming ------------------------------------------------

/// One framed chunk waiting to enter the window.
#[derive(Debug)]
pub(crate) struct PendingChunk {
    pub(crate) msg_id: u32,
    pub(crate) frame: Vec<u8>,
}

/// One framed chunk in flight (sent, unacked).
#[derive(Debug)]
pub(crate) struct InFlight {
    pub(crate) seq: u32,
    pub(crate) msg_id: u32,
    pub(crate) frame: Vec<u8>,
    pub(crate) due: Tick,
}

/// The per-message half of a streaming source: everything that exists
/// only while messages are in flight. [`SourceSession`] holds the
/// durable half (graph, keys, flow ids, RNG); this window comes and
/// goes with traffic and is empty — zero retained bytes — once every
/// message has been acknowledged.
#[derive(Debug, Default)]
pub(crate) struct StreamState {
    pub(crate) config: SessionConfig,
    pub(crate) next_msg_id: u32,
    /// Framed chunks not yet admitted to the window (paced).
    pub(crate) queue: std::collections::VecDeque<PendingChunk>,
    /// Sent, unacknowledged chunks (≤ the window size).
    pub(crate) in_flight: Vec<InFlight>,
    /// Bytes across `queue` + `in_flight`.
    pub(crate) buffered_bytes: usize,
    /// Chunks outstanding per unacked message (drops to empty as
    /// messages complete — no per-message residue).
    pub(crate) msg_chunks_left: HashMap<u32, u32>,
    /// Earliest next emission (pacing).
    pub(crate) next_pace: Tick,
    /// Transport-imposed pacing floor, ms (0 = none). The effective
    /// inter-burst gap is `max(config.pace_ms, pace_override_ms)`, so a
    /// congested transport can slow admission below the configured rate
    /// without rewriting the session's config.
    pub(crate) pace_override_ms: u64,
    /// Fully acknowledged message ids, drained by the driver.
    pub(crate) acked_msgs: Vec<u32>,
    /// Replies received from the destination, drained by the driver.
    pub(crate) replies: Vec<(u32, Vec<u8>)>,
    /// Chunks emitted since the last metrics drain.
    pub(crate) chunks_sent: u64,
    /// Retransmissions since the last metrics drain.
    pub(crate) retransmits: u64,
}

// The `Default` above needs SessionConfig: fine, derived via impl below.

impl StreamState {
    pub(crate) fn idle(&self) -> bool {
        self.queue.is_empty() && self.in_flight.is_empty()
    }
}

/// Streaming extensions on the source endpoint (the per-message window
/// machinery lives in `StreamState`; these methods orchestrate it
/// against the durable session).
impl SourceSession {
    /// Override the stream configuration (window, pacing, retransmit,
    /// buffer quota).
    pub fn set_session_config(&mut self, config: SessionConfig) {
        self.stream.config = config;
    }

    /// Impose (or clear, with 0) a transport pacing floor in
    /// milliseconds: the effective inter-burst gap becomes
    /// `max(config.pace_ms, ms)`. Driven by the transport's congestion
    /// controller — a UDP port under delay pressure quotes a hint here
    /// so sources stop outrunning the wire.
    pub fn set_pace_override(&mut self, ms: u64) {
        self.stream.pace_override_ms = ms;
    }

    /// Largest payload [`SourceSession::send`] accepts: 65 535 chunks of
    /// the per-packet chunk space.
    pub fn max_stream_len(&self) -> usize {
        self.stream_chunk_len() * u16::MAX as usize
    }

    /// Plaintext bytes of one stream chunk: the per-packet budget
    /// ([`SourceSession::max_chunk_len`]) minus the in-plaintext frame
    /// header. A payload of `n` bytes spans `ceil(n / stream_chunk_len)`
    /// sequenced messages.
    pub fn stream_chunk_len(&self) -> usize {
        self.max_chunk_len().saturating_sub(DATA_HEADER_LEN).max(1)
    }

    /// Queue `payload` as one stream message of any length: it is split
    /// into sequenced chunks, paced into a bounded in-flight window and
    /// retransmitted until the destination acknowledges each chunk.
    /// Returns the message id plus the packets to transmit now (the
    /// remainder is emitted by later [`poll`](SourceSession::poll) /
    /// [`pump`](SourceSession::pump) calls as the window opens).
    ///
    /// Errors are typed: [`SessionError::Oversize`] when the payload
    /// cannot fit 65 535 chunks, [`SessionError::Backpressure`] when the
    /// session's send buffer is full (per-session quota — retry after
    /// acks drain the window).
    pub fn send(
        &mut self,
        now: Tick,
        payload: &[u8],
    ) -> Result<(u32, Vec<SendInstr>), SessionError> {
        let chunk_len = self.stream_chunk_len();
        let count = payload.len().div_ceil(chunk_len).max(1);
        if count > u16::MAX as usize {
            return Err(SessionError::Oversize {
                len: payload.len(),
                max: self.max_stream_len(),
            });
        }
        let framed = payload.len() + count * DATA_HEADER_LEN;
        let quota = self.stream.config.send_buffer_bytes;
        if self.stream.buffered_bytes + framed > quota {
            return Err(SessionError::Backpressure {
                buffered: self.stream.buffered_bytes,
                quota,
            });
        }
        let msg_id = self.stream.next_msg_id;
        self.stream.next_msg_id = self.stream.next_msg_id.wrapping_add(1);
        if payload.is_empty() {
            self.stream.queue.push_back(PendingChunk {
                msg_id,
                frame: data_frame(msg_id, 0, 1, &[]),
            });
        } else {
            for (idx, chunk) in payload.chunks(chunk_len).enumerate() {
                self.stream.queue.push_back(PendingChunk {
                    msg_id,
                    frame: data_frame(msg_id, idx as u16, count as u16, chunk),
                });
            }
        }
        self.stream.buffered_bytes += framed;
        self.stream.msg_chunks_left.insert(msg_id, count as u32);
        Ok((msg_id, self.pump(now)))
    }

    /// Drive the stream window: retransmit overdue chunks and emit
    /// queued chunks into whatever window room is open (paced). Called
    /// from [`poll`](SourceSession::poll); drivers that want minimum
    /// latency call it directly after feeding acks in.
    pub fn pump(&mut self, now: Tick) -> Vec<SendInstr> {
        let mut sends = Vec::new();
        // Retransmits: the window is ≤ 64 entries, a scan is cheap.
        let retransmit_ms = self.stream.config.retransmit_ms;
        for i in 0..self.stream.in_flight.len() {
            if self.stream.in_flight[i].due.0 > now.0 {
                continue;
            }
            let seq = self.stream.in_flight[i].seq;
            let frame = std::mem::take(&mut self.stream.in_flight[i].frame);
            sends.extend(self.encode_message(seq, &frame));
            self.stream.in_flight[i].frame = frame;
            self.stream.in_flight[i].due = now.plus(retransmit_ms);
            self.stream.retransmits += 1;
        }
        // Fresh emissions, paced.
        if now.0 >= self.stream.next_pace.0 {
            let window = self.stream.config.window();
            // The ack bitmap covers 64 seqs; a wider window (or more
            // in-flight chunks — possible only if a mid-stream config
            // override mishandled a shrink) would let acked chunks
            // alias unacked ones.
            debug_assert!(window <= 64, "window exceeds the ack-bitmap cap");
            debug_assert!(
                self.stream.in_flight.len() <= 64,
                "in-flight chunks exceed the ack-bitmap cap"
            );
            let burst = self.stream.config.burst_chunks.max(1);
            let mut emitted = 0;
            while emitted < burst
                && self.stream.in_flight.len() < window
                && !self.stream.queue.is_empty()
            {
                let chunk = self.stream.queue.pop_front().expect("checked non-empty");
                let (seq, s) = self.send_raw(&chunk.frame);
                sends.extend(s);
                self.stream.in_flight.push(InFlight {
                    seq,
                    msg_id: chunk.msg_id,
                    frame: chunk.frame,
                    due: now.plus(retransmit_ms),
                });
                self.stream.chunks_sent += 1;
                emitted += 1;
            }
            // Pacing gates *between bursts*; a window-full stall is
            // woken by the ack that opens it (or a retransmit), not by
            // the pace timer — re-arming here would busy-wake every
            // backlogged session for nothing.
            if emitted > 0 && !self.stream.queue.is_empty() {
                let pace = self.stream.config.pace_ms.max(self.stream.pace_override_ms);
                self.stream.next_pace = now.plus(pace);
            }
        }
        sends
    }

    /// Feed a decoded reverse-path plaintext through the stream layer:
    /// acks and replies are consumed (`None`), anything else is a legacy
    /// raw reverse message and passes through.
    pub(crate) fn stream_consume(
        &mut self,
        seq: u32,
        plaintext: Vec<u8>,
    ) -> Option<(u32, Vec<u8>)> {
        match parse_frame(&plaintext) {
            Some(Frame::Ack { cum, bits }) => {
                self.apply_ack(cum, bits);
                None
            }
            Some(Frame::Reply { id, payload }) => {
                self.stream.replies.push((id, payload.to_vec()));
                None
            }
            // Stream data frames never travel source-ward; treat as raw.
            Some(Frame::Data { .. }) | None => Some((seq, plaintext)),
        }
    }

    /// Apply an ack frame: drop acknowledged chunks from the window and
    /// record message completions.
    fn apply_ack(&mut self, cum: u32, bits: u64) {
        let StreamState {
            in_flight,
            msg_chunks_left,
            acked_msgs,
            buffered_bytes,
            ..
        } = &mut self.stream;
        in_flight.retain(|f| {
            let acked = f.seq < cum
                || (f.seq > cum && f.seq - cum - 1 < 64 && (bits >> (f.seq - cum - 1)) & 1 == 1);
            if acked {
                *buffered_bytes = buffered_bytes.saturating_sub(f.frame.len());
                if let Some(left) = msg_chunks_left.get_mut(&f.msg_id) {
                    *left -= 1;
                    if *left == 0 {
                        msg_chunks_left.remove(&f.msg_id);
                        acked_msgs.push(f.msg_id);
                    }
                }
            }
            !acked
        });
    }

    /// When this session next needs driving (retransmit, paced
    /// emission, or keepalive). `None` when fully idle. Session shards
    /// use this to wheel-schedule wakeups instead of polling every
    /// session every tick.
    pub fn next_due(&self) -> Option<Tick> {
        let mut due: Option<Tick> = None;
        let mut consider = |t: Tick| {
            due = Some(due.map_or(t, |d: Tick| if t.0 < d.0 { t } else { d }));
        };
        for f in &self.stream.in_flight {
            consider(f.due);
        }
        // Queued chunks only need a pace wake while the window has
        // room; a full window is opened by acks, which pump directly.
        if !self.stream.queue.is_empty()
            && self.stream.in_flight.len() < self.stream.config.window()
        {
            consider(self.stream.next_pace);
        }
        if self.config.keepalive_ms > 0 {
            consider(
                self.last_keepalive
                    .map_or(Tick::ZERO, |l| l.plus(self.config.keepalive_ms)),
            );
        }
        due
    }

    /// Whether the stream has nothing queued or in flight (every sent
    /// message fully acknowledged — the "no per-message state retained"
    /// invariant is directly observable here).
    pub fn stream_idle(&self) -> bool {
        self.stream.idle()
    }

    /// Chunks currently in flight (sent, unacknowledged).
    pub fn stream_in_flight(&self) -> usize {
        self.stream.in_flight.len()
    }

    /// Bytes buffered for transmission (queued + in flight).
    pub fn stream_buffered_bytes(&self) -> usize {
        self.stream.buffered_bytes
    }

    /// Drain the ids of messages fully acknowledged since the last call.
    pub fn pop_acked_msgs(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.stream.acked_msgs)
    }

    /// Drain replies received from the destination since the last call.
    pub fn pop_replies(&mut self) -> Vec<(u32, Vec<u8>)> {
        std::mem::take(&mut self.stream.replies)
    }

    /// Drain `(chunks_sent, retransmits)` accumulated since the last
    /// call (shard stats accounting).
    pub fn take_stream_metrics(&mut self) -> (u64, u64) {
        let m = (self.stream.chunks_sent, self.stream.retransmits);
        self.stream.chunks_sent = 0;
        self.stream.retransmits = 0;
        m
    }
}

// ---- destination-side session --------------------------------------------

/// Everything one `handle_packet`/`handle_delivery`/`poll` call on a
/// [`DestSession`] wants to tell the driver.
#[derive(Clone, Debug, Default)]
pub struct DestOutput {
    /// Packets to transmit (acknowledgements and replies, addressed to
    /// the flow's parents on their reverse flow ids).
    pub sends: Vec<SendInstr>,
    /// Stream messages completed this call, in order: `(msg_id, bytes)`.
    pub messages: Vec<(u32, Vec<u8>)>,
    /// Unframed (pre-streaming) messages decoded this call:
    /// `(seq, bytes)`.
    pub raw: Vec<(u32, Vec<u8>)>,
    /// Newly delivered chunks this call (stats accounting).
    pub chunks: usize,
    /// Chunks dropped this call (quota or malformed — stats accounting).
    pub dropped: usize,
}

impl DestOutput {
    /// Append another call's output.
    pub fn merge(&mut self, other: DestOutput) {
        self.sends.extend(other.sends);
        self.messages.extend(other.messages);
        self.raw.extend(other.raw);
        self.chunks += other.chunks;
        self.dropped += other.dropped;
    }
}

/// Resident per-session receive state — exposed so tests and benches can
/// assert the "no per-message state retained after delivery" invariant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DestResident {
    /// Partial per-seq slice gathers.
    pub gathers: usize,
    /// Messages with some but not all chunks.
    pub partial_msgs: usize,
    /// Completed messages held for in-order release.
    pub ready_msgs: usize,
    /// Bytes across partial and held messages.
    pub reassembly_bytes: usize,
}

/// One partial per-seq slice gather.
#[derive(Debug)]
struct SeqGather {
    first_seen: Tick,
    heard: Vec<OverlayAddr>,
    slices: Vec<InfoSlice>,
}

/// One partially reassembled stream message.
#[derive(Debug)]
struct Reassembly {
    count: u16,
    got: u16,
    parts: Vec<Option<Vec<u8>>>,
}

/// The destination endpoint of one anonymous session (§4.3.5 applied at
/// the session layer): gathers the `d` slices of each sequenced chunk,
/// recombines and decrypts them, reassembles chunks into in-order
/// messages, and speaks the reverse path — acknowledgements for the
/// source's retransmit window and application replies.
///
/// Two driving modes share all state:
///
/// * **Endpoint** — [`DestSession::handle_packet`] consumes raw wire
///   packets; the session does its own slice gathering (a node that is
///   *only* a destination, e.g. under a [`SessionManager`]).
/// * **Colocated** — [`DestSession::handle_delivery`] consumes messages
///   a colocated relay already gathered and decrypted (the overlay's
///   combined relay+destination node, where the relay must keep
///   forwarding downstream so neighbours cannot tell it is the
///   destination).
///
/// Construction needs the flow's decoded [`NodeInfo`] — from the relay
/// that established it ([`crate::RelayNode::flow_info`]) or from the
/// source's graph in tests.
pub struct DestSession {
    addr: OverlayAddr,
    flow: FlowId,
    info: NodeInfo,
    /// Cached sealing state for the flow's secret key (subkeys + HMAC
    /// midstates derived once; rebuilt by [`DestSession::set_info`]).
    sealer: SealingKey,
    /// Reusable seal output buffer for reverse frames.
    seal_buf: Vec<u8>,
    config: SessionConfig,
    rng: StdRng,
    /// Chunk seqs delivered (constant space; survives gather reaping).
    delivered: ReplayGuard,
    /// Every chunk seq `< cum` is delivered (ack watermark).
    cum: u32,
    gathers: HashMap<u32, SeqGather>,
    reasm: HashMap<u32, Reassembly>,
    reasm_bytes: usize,
    /// Next stream message id to release (in-order delivery).
    next_deliver: u32,
    /// Completed messages waiting for earlier ids.
    ready: BTreeMap<u32, Vec<u8>>,
    next_reverse_seq: u32,
    /// Newly delivered chunks since the last ack.
    unacked: usize,
    /// Whether any state changed that the source should hear about.
    pending_ack: bool,
    last_ack: Option<Tick>,
    /// Last packet/delivery activity (idle GC in drivers).
    last_activity: Tick,
}

impl DestSession {
    /// Create the destination endpoint for `flow` at `addr`, from the
    /// flow's decoded info.
    pub fn new(addr: OverlayAddr, flow: FlowId, info: NodeInfo, config: SessionConfig, seed: u64) -> Self {
        let sealer = SealingKey::new(&info.secret_key);
        DestSession {
            addr,
            flow,
            info,
            sealer,
            seal_buf: Vec::new(),
            config,
            rng: StdRng::seed_from_u64(seed ^ flow.0),
            delivered: ReplayGuard::default(),
            cum: 0,
            gathers: HashMap::new(),
            reasm: HashMap::new(),
            reasm_bytes: 0,
            next_deliver: 0,
            ready: BTreeMap::new(),
            next_reverse_seq: 0,
            unacked: 0,
            pending_ack: false,
            last_ack: None,
            last_activity: Tick::ZERO,
        }
    }

    /// The forward flow this session terminates.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// Splice repaired routing into the live session: a source-issued
    /// repair re-setup gave the flow new neighbour lists (the owning
    /// relay authenticated them against the flow's secret key), and the
    /// session's reverse traffic must follow — ack slices addressed to
    /// a replaced parent blackhole, and with `d′ = d` a single stale
    /// parent leaves the source unable to decode any ack ever again.
    ///
    /// Delivery state (replay guard, watermark, gathers, reassembly) is
    /// untouched; an ack is marked pending so the next poll re-announces
    /// the delivery state over the repaired routes immediately.
    pub fn set_info(&mut self, info: NodeInfo) {
        self.sealer = SealingKey::new(&info.secret_key);
        self.info = info;
        self.pending_ack = true;
    }

    /// Last packet or delivery activity (drivers use this for idle GC).
    pub fn last_activity(&self) -> Tick {
        self.last_activity
    }

    /// Current resident receive state (bounded by configuration).
    pub fn resident(&self) -> DestResident {
        DestResident {
            gathers: self.gathers.len(),
            partial_msgs: self.reasm.len(),
            ready_msgs: self.ready.len(),
            reassembly_bytes: self.reasm_bytes,
        }
    }

    /// Endpoint mode: feed one wire packet received at the destination's
    /// own address. Gathers CRC-valid slices per seq, recombines and
    /// decrypts at `d`, then runs the shared chunk path.
    pub fn handle_packet(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> DestOutput {
        let mut out = DestOutput::default();
        if packet.header.kind != PacketKind::Data || packet.header.flow_id != self.flow {
            out.dropped += 1;
            return out;
        }
        // Only the flow's own parents contribute slices (the relay's
        // admission discipline, applied at the endpoint).
        if !self.info.parents.iter().any(|&(a, _)| a == from) {
            out.dropped += 1;
            return out;
        }
        self.last_activity = now;
        let seq = packet.header.seq;
        if self.delivered.contains(seq) {
            // Replayed chunk (lost ack): re-announce delivery state.
            self.pending_ack = true;
            out.merge(self.maybe_ack(now, false));
            return out;
        }
        let d = self.info.d as usize;
        let slot_len = packet.header.slot_len as usize;
        if slot_len < d + 4 {
            out.dropped += 1;
            return out;
        }
        if self.gathers.len() >= self.config.max_gathers && !self.gathers.contains_key(&seq) {
            out.dropped += 1;
            return out;
        }
        let gather = self.gathers.entry(seq).or_insert_with(|| SeqGather {
            first_seen: now,
            heard: Vec::new(),
            slices: Vec::new(),
        });
        if gather.heard.contains(&from) {
            out.dropped += 1;
            return out;
        }
        gather.heard.push(from);
        for i in 0..packet.header.slot_count as usize {
            let Some(payload) = crc::check_crc(packet.slot(i)) else {
                continue;
            };
            if let Some(slice) = InfoSlice::from_bytes(d, slot_len - d - 4, payload) {
                let consistent = gather
                    .slices
                    .first()
                    .is_none_or(|s| s.payload.len() == slice.payload.len());
                if consistent {
                    gather.slices.push(slice);
                }
            }
        }
        if gather.slices.len() < d {
            return out;
        }
        let Ok(sealed) = coder::decode(&gather.slices, d) else {
            // Dependent combination; keep gathering until more slices
            // or the reaper arrive.
            return out;
        };
        let Ok(plaintext) = self.sealer.open_owned(sealed) else {
            // Forged or corrupted beyond the CRC: drop the gather.
            self.gathers.remove(&seq);
            out.dropped += 1;
            return out;
        };
        // Decoded: the per-seq gather state dies right here — only the
        // constant-space replay guard remembers this seq from now on.
        self.gathers.remove(&seq);
        out.merge(self.note_chunk(now, seq, plaintext));
        out
    }

    /// Colocated mode: feed one message a colocated relay already
    /// gathered, recombined and decrypted for this receiver flow.
    pub fn handle_delivery(&mut self, now: Tick, seq: u32, plaintext: Vec<u8>) -> DestOutput {
        self.last_activity = now;
        if self.delivered.contains(seq) {
            self.pending_ack = true;
            return self.maybe_ack(now, false);
        }
        self.note_chunk(now, seq, plaintext)
    }

    /// Colocated mode: the relay saw a replay of an already-delivered
    /// seq (its replay guard suppressed the duplicate delivery). The
    /// sender is retransmitting because an ack was lost — re-announce
    /// the delivery state so its window can drain.
    pub fn handle_replay(&mut self, now: Tick, seq: u32) -> DestOutput {
        self.last_activity = now;
        let _ = seq; // the cumulative ack covers it regardless
        self.pending_ack = true;
        self.maybe_ack(now, false)
    }

    /// Shared chunk path: replay-guard the seq, parse the frame, update
    /// reassembly, release completed messages in order, ack.
    fn note_chunk(&mut self, now: Tick, seq: u32, plaintext: Vec<u8>) -> DestOutput {
        let mut out = DestOutput::default();
        match parse_frame(&plaintext) {
            Some(Frame::Data {
                msg_id,
                idx,
                count,
                chunk,
            }) => {
                if msg_id < self.next_deliver {
                    // A fresh seq re-carrying an already-delivered
                    // message (retransmit raced its ack): mark and ack
                    // so the source stops resending, deliver nothing.
                    self.mark_delivered(seq);
                    out.chunks += 1;
                } else {
                    let entry_exists = self.reasm.contains_key(&msg_id);
                    if !entry_exists && self.reasm_bytes + chunk.len() > self.config.reassembly_bytes
                    {
                        // Reassembly quota: drop *unacked* so the source
                        // retries once earlier messages drained.
                        out.dropped += 1;
                        return out;
                    }
                    let r = self.reasm.entry(msg_id).or_insert_with(|| Reassembly {
                        count,
                        got: 0,
                        parts: vec![None; count as usize],
                    });
                    if r.count != count || r.parts[idx as usize].is_some() {
                        // Shape forgery or duplicate chunk under a fresh
                        // seq: ack the seq (it is delivered content-wise)
                        // but change nothing.
                        self.mark_delivered(seq);
                        out.chunks += 1;
                    } else {
                        if self.reasm_bytes + chunk.len() > self.config.reassembly_bytes {
                            out.dropped += 1;
                            return out;
                        }
                        self.reasm_bytes += chunk.len();
                        r.parts[idx as usize] = Some(chunk.to_vec());
                        r.got += 1;
                        let complete = r.got == r.count;
                        self.mark_delivered(seq);
                        out.chunks += 1;
                        if complete {
                            let r = self.reasm.remove(&msg_id).expect("present");
                            let mut bytes =
                                Vec::with_capacity(r.parts.iter().flatten().map(Vec::len).sum());
                            for part in r.parts.into_iter().flatten() {
                                bytes.extend_from_slice(&part);
                            }
                            if msg_id == self.next_deliver {
                                self.reasm_bytes = self.reasm_bytes.saturating_sub(bytes.len());
                                out.messages.push((msg_id, bytes));
                                self.next_deliver += 1;
                                // Release any held successors.
                                while let Some(b) = self.ready.remove(&self.next_deliver) {
                                    self.reasm_bytes = self.reasm_bytes.saturating_sub(b.len());
                                    out.messages.push((self.next_deliver, b));
                                    self.next_deliver += 1;
                                }
                            } else {
                                // Completed early; hold (bytes stay under
                                // the reassembly quota) until the gap fills.
                                self.ready.insert(msg_id, bytes);
                            }
                        }
                    }
                }
            }
            Some(Frame::Ack { .. }) | Some(Frame::Reply { .. }) => {
                // Control frames never travel dest-ward; swallow.
                self.mark_delivered(seq);
                out.dropped += 1;
            }
            None => {
                // Legacy unframed message: surface as-is, still
                // at-most-once and acked (the source's cum then skips
                // over interleaved raw seqs).
                self.mark_delivered(seq);
                out.raw.push((seq, plaintext));
                out.chunks += 1;
            }
        }
        out.merge(self.maybe_ack(now, false));
        out
    }

    /// Record a chunk seq as delivered and advance the cumulative
    /// watermark.
    fn mark_delivered(&mut self, seq: u32) {
        self.delivered.insert(seq);
        while self.delivered.contains(self.cum) {
            self.cum += 1;
        }
        self.unacked += 1;
        self.pending_ack = true;
    }

    /// Emit an ack if enough chunks or enough time accumulated.
    fn maybe_ack(&mut self, now: Tick, force: bool) -> DestOutput {
        let mut out = DestOutput::default();
        if !self.pending_ack {
            return out;
        }
        let timer_due = self
            .last_ack
            .is_none_or(|l| now.since(l) >= self.config.ack_interval_ms);
        if !(force || self.unacked >= self.config.ack_every_chunks || timer_due) {
            return out;
        }
        let mut bits = 0u64;
        for i in 0..64u32 {
            if self.delivered.contains(self.cum + 1 + i) {
                bits |= 1 << i;
            }
        }
        let frame = ack_frame(self.cum, bits);
        out.sends = self.send_reverse_frame(&frame);
        self.pending_ack = false;
        self.unacked = 0;
        self.last_ack = Some(now);
        out
    }

    /// Send an application reply toward the source over the reverse
    /// path. Returns the reply id (independent of chunk seqs) and the
    /// packets to transmit.
    pub fn reply(&mut self, now: Tick, payload: &[u8]) -> Result<(u32, Vec<SendInstr>), SessionError> {
        // The reverse path carries whole messages (slot_len is u16 on
        // the wire); leave generous headroom for sealing + CRC.
        let d = self.info.d as usize;
        let max = (u16::MAX as usize - d - 4) * d;
        let max = max.saturating_sub(4 + 44);
        if payload.len() > max {
            return Err(SessionError::Oversize {
                len: payload.len(),
                max,
            });
        }
        self.last_activity = now;
        let id = self.next_reverse_seq; // reply ids share the reverse seq space
        let frame = reply_frame(id, payload);
        Ok((id, self.send_reverse_frame(&frame)))
    }

    /// Periodic work: reap stale gathers, fire the ack timer.
    pub fn poll(&mut self, now: Tick) -> DestOutput {
        if !self.gathers.is_empty() {
            let ttl = self.config.gather_ttl_ms;
            self.gathers.retain(|_, g| now.since(g.first_seen) < ttl);
        }
        self.maybe_ack(now, false)
    }

    /// When this session next needs a [`poll`](DestSession::poll) —
    /// pending-ack timers and gather reaping. `None` when idle.
    pub fn next_due(&self) -> Option<Tick> {
        let mut due: Option<Tick> = None;
        let mut consider = |t: Tick| {
            due = Some(due.map_or(t, |d: Tick| if t.0 < d.0 { t } else { d }));
        };
        if self.pending_ack {
            consider(
                self.last_ack
                    .map_or(Tick::ZERO, |l| l.plus(self.config.ack_interval_ms)),
            );
        }
        if let Some(first) = self.gathers.values().map(|g| g.first_seen).min() {
            consider(first.plus(self.config.gather_ttl_ms));
        }
        due
    }

    /// Seal a reverse frame and address one coded slice to each parent
    /// on its reverse flow id (the destination's counterpart of
    /// [`crate::relay::RelayShard::send_reverse`]).
    fn send_reverse_frame(&mut self, frame: &[u8]) -> Vec<SendInstr> {
        let seq = self.next_reverse_seq;
        self.next_reverse_seq += 1;
        let info = &self.info;
        let d = info.d as usize;
        let dp = info.d_prime as usize;
        // Cached subkeys + midstates, sealed into the reusable buffer.
        self.sealer
            .seal_into(frame, &mut self.seal_buf, &mut self.rng);
        let coded = coder::encode(&self.seal_buf, d, dp, &mut self.rng);
        let slot_len = d + coded.block_len + 4;
        let mut sends = Vec::with_capacity(info.parents.len());
        for (k, &(parent_addr, parent_rev_flow)) in info.parents.iter().enumerate() {
            let mut builder = PacketBuilder::new(PacketHeader {
                kind: PacketKind::Data,
                flow_id: parent_rev_flow,
                seq,
                d: info.d,
                slot_count: 1,
                slot_len: slot_len as u16,
            });
            let slot = builder.slot();
            let slice = &coded.slices[k % coded.slices.len()];
            slot[..d].copy_from_slice(&slice.coeffs);
            slot[d..d + coded.block_len].copy_from_slice(&slice.payload);
            crc::write_crc(slot);
            sends.push(SendInstr {
                from: self.addr,
                to: parent_addr,
                packet: builder.build(),
            });
        }
        sends
    }
}

// ---- the sharded session manager -----------------------------------------

/// Identifier of one session hosted by a [`SessionManager`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Debug for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sess:{}", self.0)
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Routes packets and commands to session shards.
///
/// Sessions are sharded by `hash(session id) % N` (exactly the
/// [`crate::FlowRouter`] discipline); in addition the router maps every
/// flow id a session listens on — a source session's stage-0 reverse
/// flow ids, a destination session's forward flow id — to its owning
/// `(shard, session)`. The map is written at open/close only, never at
/// packet rate.
#[derive(Clone, Debug)]
pub struct SessionRouter {
    shards: usize,
    flows: Arc<RwLock<HashMap<FlowId, (usize, SessionId)>>>,
}

impl SessionRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a session manager needs at least one shard");
        SessionRouter {
            shards,
            flows: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning session `id` (Fibonacci hash, like flow
    /// routing).
    pub fn route_id(&self, id: SessionId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        ((id.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % self.shards
    }

    /// The `(shard, session)` listening on `flow`, if any — the ingress
    /// peek that decides "session plane or relay plane" for a received
    /// buffer.
    pub fn lookup(&self, flow: FlowId) -> Option<(usize, SessionId)> {
        self.flows.read().unwrap().get(&flow).copied()
    }

    pub(crate) fn register(&self, flow: FlowId, shard: usize, id: SessionId) {
        self.flows.write().unwrap().insert(flow, (shard, id));
    }

    pub(crate) fn unregister(&self, flow: FlowId, id: SessionId) {
        let mut map = self.flows.write().unwrap();
        if map.get(&flow).is_some_and(|&(_, owner)| owner == id) {
            map.remove(&flow);
        }
    }
}

/// Counters across a session manager (monotonic; see
/// [`SessionStatsAtomic`] for the shared mirror).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Sessions opened.
    pub opened: u64,
    /// Sessions closed.
    pub closed: u64,
    /// Session opens rejected by the shard quota.
    pub rejected: u64,
    /// Stream messages accepted for sending.
    pub msgs_sent: u64,
    /// Chunks emitted (first transmissions).
    pub chunks_sent: u64,
    /// Chunk retransmissions.
    pub retransmits: u64,
    /// Stream messages fully acknowledged end to end.
    pub msgs_acked: u64,
    /// Chunks delivered at destination sessions.
    pub chunks_delivered: u64,
    /// Stream messages completed at destination sessions.
    pub msgs_delivered: u64,
    /// Replies surfaced to source sessions.
    pub replies: u64,
    /// Packets/chunks dropped by the session layer.
    pub drops: u64,
}

impl SessionStats {
    fn delta_since(&self, earlier: &SessionStats) -> SessionStats {
        SessionStats {
            opened: self.opened - earlier.opened,
            closed: self.closed - earlier.closed,
            rejected: self.rejected - earlier.rejected,
            msgs_sent: self.msgs_sent - earlier.msgs_sent,
            chunks_sent: self.chunks_sent - earlier.chunks_sent,
            retransmits: self.retransmits - earlier.retransmits,
            msgs_acked: self.msgs_acked - earlier.msgs_acked,
            chunks_delivered: self.chunks_delivered - earlier.chunks_delivered,
            msgs_delivered: self.msgs_delivered - earlier.msgs_delivered,
            replies: self.replies - earlier.replies,
            drops: self.drops - earlier.drops,
        }
    }

    /// Every counter as a `(name, value)` pair, in declaration order.
    ///
    /// The single authoritative enumeration of the session counters:
    /// metrics exposition iterates it instead of hand-listing fields,
    /// so the exported text can never drift from the atomics (see
    /// [`crate::RelayStats::counters`]).
    pub fn counters(&self) -> [(&'static str, u64); 11] {
        [
            ("opened", self.opened),
            ("closed", self.closed),
            ("rejected", self.rejected),
            ("msgs_sent", self.msgs_sent),
            ("chunks_sent", self.chunks_sent),
            ("retransmits", self.retransmits),
            ("msgs_acked", self.msgs_acked),
            ("chunks_delivered", self.chunks_delivered),
            ("msgs_delivered", self.msgs_delivered),
            ("replies", self.replies),
            ("drops", self.drops),
        ]
    }

    pub(crate) fn add(&mut self, other: &SessionStats) {
        self.opened += other.opened;
        self.closed += other.closed;
        self.rejected += other.rejected;
        self.msgs_sent += other.msgs_sent;
        self.chunks_sent += other.chunks_sent;
        self.retransmits += other.retransmits;
        self.msgs_acked += other.msgs_acked;
        self.chunks_delivered += other.chunks_delivered;
        self.msgs_delivered += other.msgs_delivered;
        self.replies += other.replies;
        self.drops += other.drops;
    }
}

/// Shared, atomically updated mirror of [`SessionStats`]: shards count
/// into plain locals on the hot path and fold deltas here at batch
/// boundaries, exactly like [`crate::RelayStatsAtomic`].
#[derive(Debug, Default)]
pub struct SessionStatsAtomic {
    opened: AtomicU64,
    closed: AtomicU64,
    rejected: AtomicU64,
    msgs_sent: AtomicU64,
    chunks_sent: AtomicU64,
    retransmits: AtomicU64,
    msgs_acked: AtomicU64,
    chunks_delivered: AtomicU64,
    msgs_delivered: AtomicU64,
    replies: AtomicU64,
    drops: AtomicU64,
}

impl SessionStatsAtomic {
    /// Read a snapshot (each counter exact; cross-counter skew bounded
    /// by one publish batch).
    pub fn snapshot(&self) -> SessionStats {
        SessionStats {
            opened: self.opened.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            chunks_sent: self.chunks_sent.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            msgs_acked: self.msgs_acked.load(Ordering::Relaxed),
            chunks_delivered: self.chunks_delivered.load(Ordering::Relaxed),
            msgs_delivered: self.msgs_delivered.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
        }
    }

    /// Count one dropped buffer from the I/O layer (which owns no
    /// shard).
    pub fn record_drop(&self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }

    fn fold(&self, d: &SessionStats) {
        macro_rules! fold_field {
            ($f:ident) => {
                if d.$f != 0 {
                    self.$f.fetch_add(d.$f, Ordering::Relaxed);
                }
            };
        }
        fold_field!(opened);
        fold_field!(closed);
        fold_field!(rejected);
        fold_field!(msgs_sent);
        fold_field!(chunks_sent);
        fold_field!(retransmits);
        fold_field!(msgs_acked);
        fold_field!(chunks_delivered);
        fold_field!(msgs_delivered);
        fold_field!(replies);
        fold_field!(drops);
    }
}

/// Everything one shard call wants to tell the driver.
#[derive(Clone, Debug, Default)]
pub struct SessionOutput {
    /// Packets to transmit.
    pub sends: Vec<SendInstr>,
    /// Messages completed at destination sessions:
    /// `(session, msg_id, bytes)`, in per-session order.
    pub delivered: Vec<(SessionId, u32, Vec<u8>)>,
    /// Source-side completions: `(session, msg_id)` fully acknowledged.
    pub acked: Vec<(SessionId, u32)>,
    /// Replies surfaced at source sessions: `(session, reply_id, bytes)`.
    pub replies: Vec<(SessionId, u32, Vec<u8>)>,
    /// Unframed (legacy) messages: `(session, seq, bytes)` — reverse
    /// messages at sources, raw deliveries at destinations.
    pub raw: Vec<(SessionId, u32, Vec<u8>)>,
}

impl SessionOutput {
    /// Append another call's output.
    pub fn merge(&mut self, other: SessionOutput) {
        self.sends.extend(other.sends);
        self.delivered.extend(other.delivered);
        self.acked.extend(other.acked);
        self.replies.extend(other.replies);
        self.raw.extend(other.raw);
    }
}

/// A map slot: the session plus its earliest scheduled wheel wake (so
/// re-scheduling never floods the wheel with duplicates).
struct Slot<T> {
    inner: T,
    wake: Option<Tick>,
}

/// One shard of a [`SessionManager`]: its own source and destination
/// session maps, its own [`TimerWheel`] of per-session wake deadlines,
/// its own scratch — nothing on the per-packet path crosses shards. The
/// only shared state is the [`SessionRouter`] (written at open/close)
/// and the [`SessionStatsAtomic`] mirror (folded at batch boundaries via
/// [`SessionShard::publish_stats`]).
pub struct SessionShard {
    index: usize,
    max_sessions: usize,
    sources: HashMap<u64, Slot<SourceSession>>,
    dests: HashMap<u64, Slot<DestSession>>,
    wheel: TimerWheel<u64>,
    expired: Vec<(Tick, u64)>,
    router: SessionRouter,
    stats: SessionStats,
    folded: SessionStats,
    shared: Arc<SessionStatsAtomic>,
    /// Transport pacing floor applied to every hosted source (0 = none);
    /// inherited by sessions opened later.
    pace_override_ms: u64,
}

impl SessionShard {
    /// Create shard `index` with a per-shard session quota.
    pub fn new(
        index: usize,
        max_sessions: usize,
        router: SessionRouter,
        shared: Arc<SessionStatsAtomic>,
    ) -> Self {
        SessionShard {
            index,
            max_sessions: max_sessions.max(1),
            sources: HashMap::new(),
            dests: HashMap::new(),
            wheel: TimerWheel::new(WHEEL_GRANULARITY_MS, WHEEL_BUCKETS),
            expired: Vec::new(),
            router,
            stats: SessionStats::default(),
            folded: SessionStats::default(),
            shared,
            pace_override_ms: 0,
        }
    }

    /// Set (or clear, with 0) the transport pacing floor for every
    /// source session this shard hosts, now and in the future. Called by
    /// the daemon when its egress transport publishes a new pace hint.
    pub fn set_pace_override(&mut self, ms: u64) {
        if self.pace_override_ms == ms {
            return;
        }
        self.pace_override_ms = ms;
        for slot in self.sources.values_mut() {
            slot.inner.set_pace_override(ms);
        }
    }

    /// This shard's index within its manager.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Sessions hosted by this shard (both kinds).
    pub fn session_count(&self) -> usize {
        self.sources.len() + self.dests.len()
    }

    /// Shard-local counters.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }

    /// Fold counters accrued since the last publish into the shared
    /// atomic stats.
    pub fn publish_stats(&mut self) {
        let delta = self.stats.delta_since(&self.folded);
        if delta != SessionStats::default() {
            self.shared.fold(&delta);
            self.folded = self.stats;
        }
    }

    /// Chunks in flight across this shard's source sessions.
    pub fn in_flight_chunks(&self) -> usize {
        self.sources.values().map(|s| s.inner.stream_in_flight()).sum()
    }

    /// Whether every hosted source session's stream is drained.
    pub fn streams_idle(&self) -> bool {
        self.sources.values().all(|s| s.inner.stream_idle())
    }

    /// Host a source session under `id`. Its stage-0 reverse flow ids
    /// are registered with the router so the ingress can steer reverse
    /// traffic here.
    pub fn open_source(
        &mut self,
        now: Tick,
        id: SessionId,
        mut source: SourceSession,
    ) -> Result<(), SessionError> {
        if self.session_count() >= self.max_sessions {
            self.stats.rejected += 1;
            return Err(SessionError::TooManySessions {
                limit: self.max_sessions,
            });
        }
        source.set_pace_override(self.pace_override_ms);
        for &flow in &source.graph().reverse_flow_ids[0] {
            self.router.register(flow, self.index, id);
        }
        self.sources.insert(
            id.0,
            Slot {
                inner: source,
                wake: None,
            },
        );
        self.stats.opened += 1;
        self.reschedule(now, id.0);
        Ok(())
    }

    /// Host a destination session under `id`; its forward flow id is
    /// registered with the router.
    pub fn open_dest(
        &mut self,
        now: Tick,
        id: SessionId,
        dest: DestSession,
    ) -> Result<(), SessionError> {
        if self.session_count() >= self.max_sessions {
            self.stats.rejected += 1;
            return Err(SessionError::TooManySessions {
                limit: self.max_sessions,
            });
        }
        self.router.register(dest.flow(), self.index, id);
        self.dests.insert(
            id.0,
            Slot {
                inner: dest,
                wake: None,
            },
        );
        self.stats.opened += 1;
        self.reschedule(now, id.0);
        Ok(())
    }

    /// Tear a session down, releasing its router registrations. Returns
    /// whether the id was hosted here. Per-session state dies with the
    /// session; stale wheel entries validate lazily and vanish.
    pub fn close(&mut self, id: SessionId) -> bool {
        if let Some(slot) = self.sources.remove(&id.0) {
            for &flow in &slot.inner.graph().reverse_flow_ids[0] {
                self.router.unregister(flow, id);
            }
            self.stats.closed += 1;
            return true;
        }
        if let Some(slot) = self.dests.remove(&id.0) {
            self.router.unregister(slot.inner.flow(), id);
            self.stats.closed += 1;
            return true;
        }
        false
    }

    /// Queue a stream message on a hosted source session.
    pub fn send(
        &mut self,
        now: Tick,
        id: SessionId,
        payload: &[u8],
    ) -> Result<(u32, Vec<SendInstr>), SessionError> {
        let slot = self
            .sources
            .get_mut(&id.0)
            .ok_or(SessionError::UnknownSession)?;
        let result = slot.inner.send(now, payload);
        if result.is_ok() {
            self.stats.msgs_sent += 1;
        }
        let (chunks, retx) = slot.inner.take_stream_metrics();
        self.stats.chunks_sent += chunks;
        self.stats.retransmits += retx;
        self.reschedule(now, id.0);
        result
    }

    /// Feed one received packet to the session owning its flow.
    /// `local` is the attachment address the packet arrived on (a
    /// pseudo-source for reverse traffic, the destination address for
    /// endpoint-mode forward traffic).
    // lint: hot-path
    pub fn handle_packet(
        &mut self,
        now: Tick,
        local: OverlayAddr,
        from: OverlayAddr,
        packet: &Packet,
    ) -> SessionOutput {
        let Some((shard, id)) = self.router.lookup(packet.header.flow_id) else {
            self.stats.drops += 1;
            return SessionOutput::default();
        };
        if shard != self.index {
            self.stats.drops += 1;
            return SessionOutput::default();
        }
        self.handle_routed(now, id, local, from, packet)
    }

    /// Like [`handle_packet`](SessionShard::handle_packet), with the
    /// owning session already resolved — the path ingress dispatchers
    /// take, so the router's shared map is read once per packet (at the
    /// ingress), never again on the shard. A stale id (session closed
    /// since dispatch) drops the packet.
    // lint: hot-path
    pub fn handle_routed(
        &mut self,
        now: Tick,
        id: SessionId,
        local: OverlayAddr,
        from: OverlayAddr,
        packet: &Packet,
    ) -> SessionOutput {
        let mut out = SessionOutput::default();
        if let Some(slot) = self.sources.get_mut(&id.0) {
            if let Some((seq, plaintext)) = slot.inner.handle_packet(now, local, from, packet) {
                out.raw.push((id, seq, plaintext));
            }
            out.sends.extend(slot.inner.pump(now));
            self.drain_source(id, &mut out);
            self.reschedule(now, id.0);
        } else if let Some(slot) = self.dests.get_mut(&id.0) {
            let dout = slot.inner.handle_packet(now, from, packet);
            self.absorb_dest(id, dout, &mut out);
            self.reschedule(now, id.0);
        } else {
            self.stats.drops += 1;
        }
        out
    }

    /// Drive timeouts: pop expired per-session wakes off the wheel and
    /// run each due session's periodic work. Never scans idle sessions.
    pub fn poll(&mut self, now: Tick) -> SessionOutput {
        let mut out = SessionOutput::default();
        let mut expired = std::mem::take(&mut self.expired);
        expired.clear();
        self.wheel.poll_expired(now, &mut expired);
        for &(_, key) in &expired {
            self.wake(now, key, &mut out);
        }
        self.expired = expired;
        out
    }

    /// One session's wheel entry fired: validate lazily and act.
    fn wake(&mut self, now: Tick, key: u64, out: &mut SessionOutput) {
        let id = SessionId(key);
        if let Some(slot) = self.sources.get_mut(&key) {
            slot.wake = None;
            let due = slot.inner.next_due();
            if due.is_some_and(|d| d.0 <= now.0) {
                out.sends.extend(slot.inner.poll(now));
                self.drain_source(id, out);
            }
            self.reschedule(now, key);
        } else if let Some(slot) = self.dests.get_mut(&key) {
            slot.wake = None;
            let due = slot.inner.next_due();
            if due.is_some_and(|d| d.0 <= now.0) {
                let dout = slot.inner.poll(now);
                self.absorb_dest(id, dout, out);
            }
            self.reschedule(now, key);
        }
        // Closed sessions: stale entry, nothing to do.
    }

    /// Surface a source session's drained events + metrics.
    fn drain_source(&mut self, id: SessionId, out: &mut SessionOutput) {
        let Some(slot) = self.sources.get_mut(&id.0) else {
            return;
        };
        for msg in slot.inner.pop_acked_msgs() {
            self.stats.msgs_acked += 1;
            out.acked.push((id, msg));
        }
        for (rid, payload) in slot.inner.pop_replies() {
            self.stats.replies += 1;
            out.replies.push((id, rid, payload));
        }
        let (chunks, retx) = slot.inner.take_stream_metrics();
        self.stats.chunks_sent += chunks;
        self.stats.retransmits += retx;
    }

    /// Fold a destination session's output into the shard output.
    fn absorb_dest(&mut self, id: SessionId, dout: DestOutput, out: &mut SessionOutput) {
        self.stats.chunks_delivered += dout.chunks as u64;
        self.stats.drops += dout.dropped as u64;
        self.stats.msgs_delivered += dout.messages.len() as u64;
        out.sends.extend(dout.sends);
        for (msg_id, bytes) in dout.messages {
            out.delivered.push((id, msg_id, bytes));
        }
        for (seq, bytes) in dout.raw {
            out.raw.push((id, seq, bytes));
        }
    }

    /// Re-arm the wheel at the session's earliest deadline, skipping
    /// when an earlier entry is already pending.
    fn reschedule(&mut self, _now: Tick, key: u64) {
        let (wake, due) = if let Some(slot) = self.sources.get_mut(&key) {
            (&mut slot.wake, slot.inner.next_due())
        } else if let Some(slot) = self.dests.get_mut(&key) {
            (&mut slot.wake, slot.inner.next_due())
        } else {
            return;
        };
        let Some(due) = due else { return };
        if wake.is_none_or(|w| due.0 < w.0) {
            self.wheel.schedule(due, key);
            *wake = Some(due);
        }
    }

    /// Mutable access to a hosted source session (tuning, repair).
    pub fn source_mut(&mut self, id: SessionId) -> Option<&mut SourceSession> {
        self.sources.get_mut(&id.0).map(|s| &mut s.inner)
    }

    /// Mutable access to a hosted destination session.
    pub fn dest_mut(&mut self, id: SessionId) -> Option<&mut DestSession> {
        self.dests.get_mut(&id.0).map(|s| &mut s.inner)
    }
}

/// Thousands of concurrent sessions multiplexed over one node.
///
/// The synchronous front mirrors [`crate::ShardedRelay`]: `&mut self`
/// calls route by session id (or, for packets, by registered flow id) to
/// the owning [`SessionShard`], while [`SessionManager::into_parts`]
/// splits ownership for the async runtime — each shard moves into its
/// own worker task and the [`SessionRouter`] into the ingress
/// dispatcher.
pub struct SessionManager {
    shards: Vec<SessionShard>,
    router: SessionRouter,
    shared: Arc<SessionStatsAtomic>,
    next_id: u64,
    default_config: SessionConfig,
}

impl SessionManager {
    /// A manager with `shards` shards and a whole-node session budget
    /// (divided into per-shard quotas, like
    /// [`crate::RelayConfig::max_flows`]).
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize, max_sessions: usize, config: SessionConfig) -> Self {
        let router = SessionRouter::new(shards);
        let shared = Arc::new(SessionStatsAtomic::default());
        let per_shard = max_sessions.div_ceil(shards).max(1);
        let shards = (0..shards)
            .map(|i| SessionShard::new(i, per_shard, router.clone(), Arc::clone(&shared)))
            .collect();
        SessionManager {
            shards,
            router,
            shared,
            next_id: 1,
            default_config: config,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The default per-session configuration applied at open.
    pub fn default_config(&self) -> SessionConfig {
        self.default_config
    }

    /// The router (ingress dispatchers use it to steer received buffers
    /// to the session plane).
    pub fn router(&self) -> &SessionRouter {
        &self.router
    }

    /// The shared atomic stats mirror.
    pub fn shared_stats(&self) -> Arc<SessionStatsAtomic> {
        Arc::clone(&self.shared)
    }

    /// Exact manager-wide counters (sum of shard locals plus I/O-layer
    /// drops recorded straight into the shared cell).
    pub fn stats(&self) -> SessionStats {
        let io = self.shared.snapshot();
        let mut total = SessionStats {
            drops: io.drops,
            ..SessionStats::default()
        };
        for s in &self.shards {
            total.add(&s.stats());
        }
        total
    }

    /// Sessions hosted across all shards.
    pub fn session_count(&self) -> usize {
        self.shards.iter().map(|s| s.session_count()).sum()
    }

    /// Chunks in flight across every hosted source session.
    pub fn in_flight_chunks(&self) -> usize {
        self.shards.iter().map(|s| s.in_flight_chunks()).sum()
    }

    /// Whether every hosted source stream is drained (all messages
    /// acknowledged, nothing queued).
    pub fn streams_idle(&self) -> bool {
        self.shards.iter().all(|s| s.streams_idle())
    }

    /// Allocate the next session id (stable hash-routing to a shard).
    pub fn alloc_id(&mut self) -> SessionId {
        let id = SessionId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Host a source session; applies the manager's default
    /// [`SessionConfig`] and registers its reverse flow ids.
    pub fn open_source(
        &mut self,
        now: Tick,
        mut source: SourceSession,
    ) -> Result<SessionId, SessionError> {
        let id = self.alloc_id();
        source.set_session_config(self.default_config);
        let shard = self.router.route_id(id);
        self.shards[shard].open_source(now, id, source)?;
        Ok(id)
    }

    /// Host a destination endpoint for `flow` at `addr`, built from the
    /// flow's decoded info.
    pub fn open_dest(
        &mut self,
        now: Tick,
        addr: OverlayAddr,
        flow: FlowId,
        info: NodeInfo,
        seed: u64,
    ) -> Result<SessionId, SessionError> {
        let id = self.alloc_id();
        let dest = DestSession::new(addr, flow, info, self.default_config, seed);
        let shard = self.router.route_id(id);
        self.shards[shard].open_dest(now, id, dest)?;
        Ok(id)
    }

    /// Tear a session down.
    pub fn close(&mut self, id: SessionId) -> bool {
        let shard = self.router.route_id(id);
        self.shards[shard].close(id)
    }

    /// Queue a stream message on session `id`.
    pub fn send(
        &mut self,
        now: Tick,
        id: SessionId,
        payload: &[u8],
    ) -> Result<(u32, Vec<SendInstr>), SessionError> {
        let shard = self.router.route_id(id);
        self.shards[shard].send(now, id, payload)
    }

    /// Feed one received packet (routed by its flow id to the owning
    /// shard; unknown flows are dropped and counted).
    pub fn handle_packet(
        &mut self,
        now: Tick,
        local: OverlayAddr,
        from: OverlayAddr,
        packet: &Packet,
    ) -> SessionOutput {
        match self.router.lookup(packet.header.flow_id) {
            Some((shard, id)) => self.shards[shard].handle_routed(now, id, local, from, packet),
            None => {
                self.shared.record_drop();
                SessionOutput::default()
            }
        }
    }

    /// Drive timeouts on every shard.
    pub fn poll(&mut self, now: Tick) -> SessionOutput {
        let mut out = SessionOutput::default();
        for s in &mut self.shards {
            out.merge(s.poll(now));
        }
        out
    }

    /// Mutable access to a hosted source session.
    pub fn source_mut(&mut self, id: SessionId) -> Option<&mut SourceSession> {
        let shard = self.router.route_id(id);
        self.shards[shard].source_mut(id)
    }

    /// Mutable access to a hosted destination session.
    pub fn dest_mut(&mut self, id: SessionId) -> Option<&mut DestSession> {
        let shard = self.router.route_id(id);
        self.shards[shard].dest_mut(id)
    }

    /// Split into the pieces the async runtime owns separately: the
    /// shards (one per worker task), the router (ingress) and the
    /// shared stats.
    pub fn into_parts(self) -> (Vec<SessionShard>, SessionRouter, Arc<SessionStatsAtomic>) {
        (self.shards, self.router, self.shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// See `RelayStats::counters` test: one entry per field, distinct
    /// names, values wired to the right fields.
    #[test]
    fn session_counters_enumerate_every_field() {
        let stats = SessionStats {
            opened: 1,
            closed: 2,
            rejected: 3,
            msgs_sent: 4,
            chunks_sent: 5,
            retransmits: 6,
            msgs_acked: 7,
            chunks_delivered: 8,
            msgs_delivered: 9,
            replies: 10,
            drops: 11,
        };
        let values: Vec<u64> = stats.counters().iter().map(|(_, v)| *v).collect();
        assert_eq!(values, (1..=11).collect::<Vec<u64>>());
        let mut names: Vec<&str> = stats.counters().iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11, "counter names must be unique");
    }

    #[test]
    fn frames_round_trip() {
        let f = data_frame(7, 2, 5, b"chunk bytes");
        match parse_frame(&f) {
            Some(Frame::Data {
                msg_id,
                idx,
                count,
                chunk,
            }) => {
                assert_eq!((msg_id, idx, count), (7, 2, 5));
                assert_eq!(chunk, b"chunk bytes");
            }
            _ => panic!("data frame must parse"),
        }
        let f = ack_frame(41, 0b1011);
        match parse_frame(&f) {
            Some(Frame::Ack { cum, bits }) => assert_eq!((cum, bits), (41, 0b1011)),
            _ => panic!("ack frame must parse"),
        }
        let f = reply_frame(3, b"pong");
        match parse_frame(&f) {
            Some(Frame::Reply { id, payload }) => {
                assert_eq!(id, 3);
                assert_eq!(payload, b"pong");
            }
            _ => panic!("reply frame must parse"),
        }
    }

    #[test]
    fn malformed_frames_are_raw() {
        assert!(parse_frame(b"").is_none());
        assert!(parse_frame(b"hello overlay").is_none());
        // Truncated data header.
        assert!(parse_frame(&[FRAME_DATA, 1, 2, 3]).is_none());
        // Zero chunk count.
        let mut bad = data_frame(1, 0, 1, b"x");
        bad[7] = 0;
        bad[8] = 0;
        assert!(parse_frame(&bad).is_none());
        // idx >= count.
        let mut bad = data_frame(1, 0, 1, b"x");
        bad[5] = 9;
        assert!(parse_frame(&bad).is_none());
        // Wrong ack length.
        assert!(parse_frame(&[FRAME_ACK, 0, 0, 0, 0]).is_none());
    }

    #[test]
    fn session_router_registration() {
        let r = SessionRouter::new(4);
        let id = SessionId(9);
        let flow = FlowId(0xF00);
        assert_eq!(r.lookup(flow), None);
        r.register(flow, 2, id);
        assert_eq!(r.lookup(flow), Some((2, id)));
        // Unregister by the wrong owner is a no-op.
        r.unregister(flow, SessionId(8));
        assert_eq!(r.lookup(flow), Some((2, id)));
        r.unregister(flow, id);
        assert_eq!(r.lookup(flow), None);
    }

    #[test]
    fn router_spreads_session_ids() {
        let r = SessionRouter::new(8);
        let mut counts = [0usize; 8];
        for i in 1..=8000u64 {
            counts[r.route_id(SessionId(i))] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "shard starved: {counts:?}");
        }
    }
}
