//! Per-hop slice transforms that defeat pattern-insertion tracking
//! (§9.4(a)).
//!
//! Colluding attackers in non-consecutive stages could recognise a flow by
//! inserting a bit pattern and spotting it downstream. The defence: the
//! source pre-applies a chain of random invertible transforms
//! `T₁ ∘ T₂ ∘ … ∘ T_{i−1}` to each slice, and sends each relay on the
//! slice's path the inverse of one `T_k` (inside its confidential `I_x`).
//! Each hop strips one layer, so the slice's bits look completely
//! different on every link, and only the final recipient sees the
//! original.
//!
//! Our `T` is an affine map over the slice bytes: multiply by a nonzero
//! GF(2⁸) scalar and add a ChaCha20 keystream pad derived from a secret
//! 16-byte seed. Affine maps compose and invert cheaply, and with a secret
//! seed the padded output is unpredictable to an observer.

use rand::Rng;

use slicing_crypto::chacha20::ChaCha20;
use slicing_gf::{bulk, Field, Gf256};

/// Length of a transform seed in bytes.
pub const SEED_LEN: usize = 16;

/// One invertible per-hop transform.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct HopTransform {
    /// Nonzero GF(2⁸) multiplier.
    pub mult: u8,
    /// Pad seed (expanded with ChaCha20).
    pub seed: [u8; SEED_LEN],
}

impl std::fmt::Debug for HopTransform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "HopTransform(mult={:#04x}, seed=..)", self.mult)
    }
}

impl HopTransform {
    /// Sample a random transform.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut seed = [0u8; SEED_LEN];
        rng.fill_bytes(&mut seed);
        HopTransform {
            mult: Gf256::random_nonzero(rng).value(),
            seed,
        }
    }

    /// Serialized length.
    pub const WIRE_LEN: usize = 1 + SEED_LEN;

    /// Serialize as `mult ‖ seed`.
    pub fn to_bytes(&self) -> [u8; Self::WIRE_LEN] {
        let mut out = [0u8; Self::WIRE_LEN];
        out[0] = self.mult;
        out[1..].copy_from_slice(&self.seed);
        out
    }

    /// Deserialize; `None` if the multiplier is zero (not invertible).
    pub fn from_bytes(bytes: &[u8; Self::WIRE_LEN]) -> Option<Self> {
        if bytes[0] == 0 {
            return None;
        }
        let mut seed = [0u8; SEED_LEN];
        seed.copy_from_slice(&bytes[1..]);
        Some(HopTransform {
            mult: bytes[0],
            seed,
        })
    }

    fn pad(&self, len: usize) -> Vec<u8> {
        let mut key = [0u8; 32];
        key[..SEED_LEN].copy_from_slice(&self.seed);
        let mut pad = vec![0u8; len];
        ChaCha20::xor(&key, &[0u8; 12], 0, &mut pad);
        pad
    }

    /// Apply the forward transform in place: `b ← mult·b + pad`, fused
    /// into a single pass over the buffer.
    pub fn apply(&self, data: &mut [u8]) {
        debug_assert!(self.mult != 0);
        let pad = self.pad(data.len());
        bulk::mul_xor_slice(data, self.mult, &pad);
    }

    /// Apply the inverse transform in place: `b ← mult⁻¹·(b − pad)`,
    /// fused into a single pass over the buffer.
    pub fn unapply(&self, data: &mut [u8]) {
        debug_assert!(self.mult != 0);
        let inv = Gf256::new(self.mult).inv().value();
        let pad = self.pad(data.len());
        bulk::xor_mul_slice(data, inv, &pad);
    }
}

/// Apply a whole source-side chain `T₁ ∘ … ∘ T_n` to a slice buffer.
///
/// The chain is applied so that relays unapply in **path order**: the
/// first relay on the path strips `chain[0]`, the second `chain[1]`, …
/// (i.e. the source applies them in reverse).
pub fn apply_chain(chain: &[HopTransform], data: &mut [u8]) {
    for t in chain.iter().rev() {
        t.apply(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(5)
    }

    #[test]
    fn apply_unapply_round_trip() {
        let mut rng = rng();
        let t = HopTransform::random(&mut rng);
        let original: Vec<u8> = (0..200u32).map(|i| (i % 256) as u8).collect();
        let mut data = original.clone();
        t.apply(&mut data);
        assert_ne!(data, original);
        t.unapply(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn chain_strips_in_path_order() {
        let mut rng = rng();
        let chain: Vec<HopTransform> = (0..4).map(|_| HopTransform::random(&mut rng)).collect();
        let original = b"pattern-free slice".to_vec();
        let mut data = original.clone();
        apply_chain(&chain, &mut data);
        // Each relay k strips chain[k] in order; after all, original returns.
        for t in &chain {
            assert_ne!(data, original, "pattern visible mid-path");
            t.unapply(&mut data);
        }
        assert_eq!(data, original);
    }

    #[test]
    fn intermediate_states_all_differ() {
        // The same slice must look different on every link (§9.4(a)).
        let mut rng = rng();
        let chain: Vec<HopTransform> = (0..5).map(|_| HopTransform::random(&mut rng)).collect();
        let mut data = vec![0xAAu8; 64];
        apply_chain(&chain, &mut data);
        let mut seen = vec![data.clone()];
        for t in &chain {
            t.unapply(&mut data);
            assert!(!seen.contains(&data), "repeated wire pattern");
            seen.push(data.clone());
        }
    }

    #[test]
    fn wire_round_trip() {
        let mut rng = rng();
        let t = HopTransform::random(&mut rng);
        let b = t.to_bytes();
        assert_eq!(HopTransform::from_bytes(&b).unwrap(), t);
    }

    #[test]
    fn zero_multiplier_rejected() {
        let mut b = [0u8; HopTransform::WIRE_LEN];
        b[5] = 3;
        assert!(HopTransform::from_bytes(&b).is_none());
    }

    #[test]
    fn empty_buffer_is_fine() {
        let mut rng = rng();
        let t = HopTransform::random(&mut rng);
        let mut data: Vec<u8> = vec![];
        t.apply(&mut data);
        t.unapply(&mut data);
        assert!(data.is_empty());
    }
}
