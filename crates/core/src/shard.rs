//! Sharding the relay data plane across cores.
//!
//! The paper's relays carry many concurrent flows (§7's multi-flow
//! throughput experiments), and flows are independent by construction:
//! a flow's gathers, timers and per-hop state never reference another
//! flow. [`ShardedRelay`] exploits that by splitting one relay into `N`
//! [`RelayShard`]s and routing every packet by its cleartext flow id —
//! `hash(flow_id) % N` — so each shard owns a disjoint flow set and the
//! packet path crosses no locks.
//!
//! Two pieces of state span shards:
//!
//! * **Stats** — each shard counts locally and folds deltas into one
//!   [`RelayStatsAtomic`] (see [`RelayShard::publish_stats`]).
//! * **Reverse flow ids** — reverse-path packets arrive under the
//!   flow's *reverse* id, which hashes to an arbitrary shard. The
//!   [`FlowRouter`] keeps a reverse-id → shard map, written only at flow
//!   establishment and eviction (never at packet rate) and consulted by
//!   the router before falling back to the hash. A reverse packet that
//!   races ahead of its flow's registration is dropped exactly as it
//!   would have been by a single-shard relay that had not yet
//!   established the flow.
//!
//! `max_flows` becomes a per-shard quota: [`ShardedRelay::with_config`]
//! divides the node budget across shards, so the resource-exhaustion
//! guard needs no cross-shard coordination.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use slicing_graph::packets::SendInstr;
use slicing_graph::info::NodeInfo;
use slicing_graph::OverlayAddr;
use slicing_wire::{FlowId, Packet};

use crate::relay::{RelayConfig, RelayNode, RelayOutput, RelayShard, RelayStats, RelayStatsAtomic};
use crate::time::Tick;

/// Routes packets to shards by flow id.
///
/// Cloneable and cheap to share: the sharded daemon hands one clone to
/// its ingress task while the shards themselves (each holding another
/// clone for reverse-id registration) move into their worker tasks.
#[derive(Clone, Debug)]
pub struct FlowRouter {
    shards: usize,
    /// Reverse flow-id → owning shard. Written at establishment and
    /// eviction only; read per reverse-capable routing decision.
    reverse: Arc<RwLock<HashMap<FlowId, usize>>>,
}

impl FlowRouter {
    /// A router over `shards` shards.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "a relay needs at least one shard");
        FlowRouter {
            shards,
            reverse: Arc::new(RwLock::new(HashMap::new())),
        }
    }

    /// Number of shards routed over.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard that owns `flow`: a registered reverse id routes to the
    /// shard holding its forward flow, anything else by hash.
    pub fn route(&self, flow: FlowId) -> usize {
        if self.shards == 1 {
            return 0;
        }
        if let Some(&idx) = self.reverse.read().unwrap().get(&flow) {
            return idx;
        }
        self.hash_route(flow)
    }

    /// The hash route ignoring reverse registrations (Fibonacci hashing
    /// over the high bits — flow ids are uniform random u64s, but cheap
    /// mixing keeps adversarially chosen ids from pinning one shard).
    fn hash_route(&self, flow: FlowId) -> usize {
        ((flow.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) % self.shards
    }

    /// Record that `shard` established the flow whose reverse id is
    /// `rev` (called by [`RelayShard`]; no-op for single-shard relays).
    pub(crate) fn register_reverse(&self, rev: FlowId, shard: usize) {
        if self.shards > 1 {
            self.reverse.write().unwrap().insert(rev, shard);
        }
    }

    /// Drop a reverse-id registration at flow eviction — only if it
    /// still points at the evicting shard (a colliding id re-registered
    /// by another shard must survive).
    pub(crate) fn unregister_reverse(&self, rev: FlowId, shard: usize) {
        if self.shards > 1 {
            let mut map = self.reverse.write().unwrap();
            if map.get(&rev) == Some(&shard) {
                map.remove(&rev);
            }
        }
    }
}

/// A relay fanned out over `N` independent [`RelayShard`]s, routed by
/// flow id.
///
/// The synchronous front used here keeps the same `&mut self` API as
/// [`RelayNode`] (so the deterministic test network and the benches can
/// drive either), while [`ShardedRelay::into_parts`] splits ownership
/// for the async runtime: each shard moves into its own worker task and
/// the [`FlowRouter`] moves into the ingress dispatcher.
pub struct ShardedRelay {
    addr: OverlayAddr,
    shards: Vec<RelayShard>,
    router: FlowRouter,
    shared: Arc<RelayStatsAtomic>,
}

impl ShardedRelay {
    /// Create a relay with `shards` shards and default configuration.
    pub fn new(addr: OverlayAddr, seed: u64, shards: usize) -> Self {
        Self::with_config(addr, seed, RelayConfig::default(), shards)
    }

    /// Create with explicit configuration. `config.max_flows` is the
    /// whole node's budget; each shard gets an equal share (rounded up),
    /// making the exhaustion guard a per-shard quota.
    ///
    /// # Panics
    /// Panics if `shards` is zero.
    pub fn with_config(addr: OverlayAddr, seed: u64, config: RelayConfig, shards: usize) -> Self {
        let router = FlowRouter::new(shards);
        let shared = Arc::new(RelayStatsAtomic::default());
        let per_shard = RelayConfig {
            max_flows: config.max_flows.div_ceil(shards).max(1),
            ..config
        };
        let shards = (0..shards)
            .map(|i| {
                RelayShard::new(
                    addr,
                    seed,
                    per_shard,
                    i,
                    router.clone(),
                    Arc::clone(&shared),
                )
            })
            .collect();
        ShardedRelay {
            addr,
            shards,
            router,
            shared,
        }
    }

    /// This node's address.
    pub fn addr(&self) -> OverlayAddr {
        self.addr
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The router (exposed so drivers can pre-partition work the way
    /// the ingress dispatcher would).
    pub fn router(&self) -> &FlowRouter {
        &self.router
    }

    /// Relay-wide counters: the sum of every shard's local counters,
    /// plus the two counters the I/O layer records straight into the
    /// shared cell (wire-garbage and ingress load-shedding drops).
    /// While the front owns its shards nothing folds shard locals into
    /// the cell, so the cell holds exactly the I/O-recorded part and
    /// this sum double-counts nothing.
    pub fn stats(&self) -> RelayStats {
        let io = self.shared.snapshot();
        let mut total = RelayStats {
            garbage: io.garbage,
            drops: io.drops,
            ..RelayStats::default()
        };
        for s in &self.shards {
            total.add(&s.stats());
        }
        total
    }

    /// The shared atomic stats (complete only after
    /// [`RelayShard::publish_stats`]; the synchronous [`stats`] is exact).
    ///
    /// [`stats`]: ShardedRelay::stats
    pub fn shared_stats(&self) -> Arc<RelayStatsAtomic> {
        Arc::clone(&self.shared)
    }

    /// Live flows across all shards.
    pub fn flow_count(&self) -> usize {
        self.shards.iter().map(|s| s.flow_count()).sum()
    }

    /// The decoded info of an established flow, if any.
    pub fn flow_info(&self, flow: FlowId) -> Option<&NodeInfo> {
        self.shards[self.router.route(flow)].flow_info(flow)
    }

    /// Feed one packet to the shard owning its flow.
    pub fn handle_packet(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        let idx = self.router.route(packet.header.flow_id);
        self.shards[idx].handle_packet(now, from, packet)
    }

    /// Drive timeouts on every shard (each shard pops only its own
    /// expired deadlines).
    pub fn poll(&mut self, now: Tick) -> RelayOutput {
        let mut out = RelayOutput::default();
        for s in &mut self.shards {
            out.merge(s.poll(now));
        }
        out
    }

    /// Send application data back toward the source on the reverse path
    /// of `flow` (this node must be its destination); see
    /// [`RelayShard::send_reverse`].
    pub fn send_reverse(
        &mut self,
        now: Tick,
        flow: FlowId,
        seq: u32,
        plaintext: &[u8],
    ) -> Option<Vec<SendInstr>> {
        let idx = self.router.route(flow);
        self.shards[idx].send_reverse(now, flow, seq, plaintext)
    }

    /// Split into the pieces the async runtime owns separately: the
    /// shards (one per worker task), the router (for the ingress
    /// dispatcher) and the shared stats.
    pub fn into_parts(self) -> (Vec<RelayShard>, FlowRouter, Arc<RelayStatsAtomic>) {
        (self.shards, self.router, self.shared)
    }
}

impl From<RelayNode> for ShardedRelay {
    /// A single-shard relay from the classic facade (routing is a no-op).
    fn from(node: RelayNode) -> Self {
        let addr = node.addr();
        let (shard, router, shared) = node.into_parts();
        ShardedRelay {
            addr,
            shards: vec![shard],
            router,
            shared,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn router_is_stable_and_in_range() {
        let r = FlowRouter::new(8);
        for i in 0..1000u64 {
            let f = FlowId(i.wrapping_mul(0x1234_5678_9ABC_DEF1));
            let idx = r.route(f);
            assert!(idx < 8);
            assert_eq!(idx, r.route(f), "routing must be deterministic");
        }
    }

    #[test]
    fn router_spreads_flows() {
        let r = FlowRouter::new(8);
        let mut counts = [0usize; 8];
        for i in 0..8000u64 {
            // Uniform-ish ids, as FlowId::random produces.
            counts[r.route(FlowId(i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17)))] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "shard starved: {counts:?}");
        }
    }

    #[test]
    fn reverse_registration_overrides_hash() {
        let r = FlowRouter::new(8);
        let rev = FlowId(0xDEAD_BEEF);
        let natural = r.route(rev);
        let target = (natural + 3) % 8;
        r.register_reverse(rev, target);
        assert_eq!(r.route(rev), target);
        // Unregister by the wrong shard is a no-op; by the right one
        // restores hash routing.
        r.unregister_reverse(rev, (target + 1) % 8);
        assert_eq!(r.route(rev), target);
        r.unregister_reverse(rev, target);
        assert_eq!(r.route(rev), natural);
    }

    #[test]
    fn single_shard_router_never_locks_registrations() {
        let r = FlowRouter::new(1);
        r.register_reverse(FlowId(7), 0);
        assert_eq!(r.route(FlowId(7)), 0);
        assert!(r.reverse.read().unwrap().is_empty(), "N=1 skips the map");
    }

    #[test]
    fn max_flows_becomes_per_shard_quota() {
        let cfg = RelayConfig {
            max_flows: 10,
            ..RelayConfig::default()
        };
        let relay = ShardedRelay::with_config(OverlayAddr(1), 7, cfg, 4);
        // ceil(10 / 4) = 3 per shard; total capacity 12 ≥ the node
        // budget, enforced without cross-shard coordination.
        assert_eq!(relay.shard_count(), 4);
    }
}
