//! Property-based tests for field axioms, matrix identities, and the
//! bulk byte-slice kernels.

use proptest::prelude::*;
use slicing_gf::{bulk, mds, Field, Gf256, Gf65536, Matrix};

/// The slice lengths the bulk kernels must agree with scalar arithmetic
/// on: empty, single byte, sub-word, one cache line, and a full page.
const KERNEL_LENS: [usize; 5] = [0, 1, 7, 64, 4096];

fn gf256() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

fn gf64k() -> impl Strategy<Value = Gf65536> {
    any::<u16>().prop_map(Gf65536::new)
}

proptest! {
    #[test]
    fn gf256_add_assoc(a in gf256(), b in gf256(), c in gf256()) {
        prop_assert_eq!(a.add(b).add(c), a.add(b.add(c)));
    }

    #[test]
    fn gf256_mul_distributes(a in gf256(), b in gf256(), c in gf256()) {
        prop_assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }

    #[test]
    fn gf256_inverse(a in gf256()) {
        if !a.is_zero() {
            prop_assert_eq!(a.mul(a.inv()), Gf256::one());
        }
    }

    #[test]
    fn gf64k_mul_commutes(a in gf64k(), b in gf64k()) {
        prop_assert_eq!(a.mul(b), b.mul(a));
    }

    #[test]
    fn gf64k_inverse(a in gf64k()) {
        if !a.is_zero() {
            prop_assert_eq!(a.mul(a.inv()), Gf65536::one());
        }
    }

    #[test]
    fn gf64k_pow_law(a in gf64k(), e1 in 0u64..64, e2 in 0u64..64) {
        if !a.is_zero() {
            prop_assert_eq!(a.pow(e1).mul(a.pow(e2)), a.pow(e1 + e2));
        }
    }

    /// Random square matrices: inverse round-trips whenever it exists.
    #[test]
    fn matrix_inverse_round_trip(seed in any::<u64>(), n in 1usize..7) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Gf256>::random(n, n, &mut rng);
        match m.inverse() {
            Some(inv) => {
                prop_assert_eq!(m.mul_mat(&inv), Matrix::identity(n));
                prop_assert!(m.is_invertible());
            }
            None => prop_assert!(!m.is_invertible()),
        }
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ.
    #[test]
    fn transpose_of_product(seed in any::<u64>(), n in 1usize..6, m in 1usize..6, k in 1usize..6) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Gf256>::random(n, m, &mut rng);
        let b = Matrix::<Gf256>::random(m, k, &mut rng);
        prop_assert_eq!(
            a.mul_mat(&b).transpose(),
            b.transpose().mul_mat(&a.transpose())
        );
    }

    /// solve(b) really solves A·x = b for invertible A.
    #[test]
    fn solve_is_correct(seed in any::<u64>(), n in 1usize..7) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::<Gf256>::random_invertible(n, &mut rng);
        let b: Vec<Gf256> = (0..n).map(|_| Gf256::random(&mut rng)).collect();
        let x = a.solve(&b).unwrap();
        prop_assert_eq!(a.mul_vec(&x), b);
    }

    /// Every MDS generator produced by the auto-chooser has the
    /// any-d-rows-invertible property (kept small so exhaustive check is fast).
    #[test]
    fn generator_property(seed in any::<u64>(), d in 1usize..5, extra in 0usize..4) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let dp = d + extra;
        let g = mds::generator::<Gf256, _>(dp, d, &mut rng);
        prop_assert!(mds::all_row_subsets_invertible(&g));
    }

    /// Matrix serialization round-trips.
    #[test]
    fn matrix_bytes_round_trip(seed in any::<u64>(), r in 1usize..6, c in 1usize..6) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let m = Matrix::<Gf65536>::random(r, c, &mut rng);
        prop_assert_eq!(Matrix::<Gf65536>::from_bytes(r, c, &m.to_bytes()), m);
    }

    /// `bulk::mul_add_slice` agrees with element-at-a-time `Gf256` ops
    /// at every interesting length, including the `c = 0`/`c = 1`
    /// special-cased paths.
    #[test]
    fn bulk_mul_add_matches_scalar(seed in any::<u64>(), c in any::<u8>()) {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for len in KERNEL_LENS {
            let mut src = vec![0u8; len];
            let mut dst = vec![0u8; len];
            rng.fill_bytes(&mut src);
            rng.fill_bytes(&mut dst);
            for c in [c, 0, 1] {
                let expect: Vec<u8> = dst
                    .iter()
                    .zip(src.iter())
                    .map(|(&d, &s)| Gf256::new(d).add(Gf256::new(c).mul(Gf256::new(s))).value())
                    .collect();
                let mut got = dst.clone();
                bulk::mul_add_slice(&mut got, c, &src);
                prop_assert_eq!(&got, &expect, "len {} c {}", len, c);
            }
        }
    }

    /// `bulk::mul_slice` (in place) and `bulk::mul_slice_into` agree
    /// with scalar multiplication at every interesting length.
    #[test]
    fn bulk_mul_matches_scalar(seed in any::<u64>(), c in any::<u8>()) {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for len in KERNEL_LENS {
            let mut src = vec![0u8; len];
            rng.fill_bytes(&mut src);
            for c in [c, 0, 1] {
                let expect: Vec<u8> = src
                    .iter()
                    .map(|&s| Gf256::new(c).mul(Gf256::new(s)).value())
                    .collect();
                let mut in_place = src.clone();
                bulk::mul_slice(&mut in_place, c);
                prop_assert_eq!(&in_place, &expect, "mul_slice len {} c {}", len, c);
                let mut into = vec![0xEEu8; len];
                bulk::mul_slice_into(&mut into, c, &src);
                prop_assert_eq!(&into, &expect, "mul_slice_into len {} c {}", len, c);
            }
        }
    }

    /// The SWAR XOR path is exact at word boundaries and remainders.
    #[test]
    fn bulk_xor_matches_scalar(seed in any::<u64>()) {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        for len in KERNEL_LENS {
            let mut src = vec![0u8; len];
            let mut dst = vec![0u8; len];
            rng.fill_bytes(&mut src);
            rng.fill_bytes(&mut dst);
            let expect: Vec<u8> = dst.iter().zip(src.iter()).map(|(d, s)| d ^ s).collect();
            bulk::xor_slice(&mut dst, &src);
            prop_assert_eq!(&dst, &expect, "len {}", len);
        }
    }
}

// ---- per-backend kernel oracles -------------------------------------------
//
// Every backend the host offers (scalar, SWAR, and — on capable hosts —
// SIMD) must agree bit-for-bit with element-at-a-time scalar field
// arithmetic, over arbitrary lengths (odd tails), unaligned starting
// offsets (the SIMD engines use unaligned loads, but the tail-handoff
// arithmetic must stay exact wherever the slice begins), and the
// special-cased `c = 0` / `c = 1` coefficients.

proptest! {
    /// All five GF(2⁸) slice transforms plus the dot product, on every
    /// available backend.
    #[test]
    fn gf8_kernels_match_oracle_on_every_backend(
        seed in any::<u64>(),
        len in 0usize..530,
        off in 0usize..17,
        c_any in any::<u8>(),
    ) {
        use rand::{rngs::StdRng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a_buf = vec![0u8; off + len];
        let mut b_buf = vec![0u8; off + len];
        rng.fill_bytes(&mut a_buf);
        rng.fill_bytes(&mut b_buf);
        let a = &a_buf[off..];
        let b = &b_buf[off..];
        let mul = |x: u8, y: u8| Gf256::new(x).mul(Gf256::new(y)).value();
        for backend in slicing_gf::simd::available_backends() {
            for c in [c_any, 0, 1] {
                // axpy: dst ^= c·src
                let mut got = a_buf.clone();
                bulk::mul_add_slice_on(backend, &mut got[off..], c, b);
                let want: Vec<u8> =
                    a.iter().zip(b).map(|(&d, &s)| d ^ mul(c, s)).collect();
                prop_assert_eq!(&got[off..], &want[..], "axpy {} c {}", backend, c);
                // scale in place: dst = c·dst
                let mut got = a_buf.clone();
                bulk::mul_slice_on(backend, &mut got[off..], c);
                let want: Vec<u8> = a.iter().map(|&d| mul(c, d)).collect();
                prop_assert_eq!(&got[off..], &want[..], "scale {} c {}", backend, c);
                // scale into: dst = c·src
                let mut got = a_buf.clone();
                bulk::mul_slice_into_on(backend, &mut got[off..], c, b);
                let want: Vec<u8> = b.iter().map(|&s| mul(c, s)).collect();
                prop_assert_eq!(&got[off..], &want[..], "into {} c {}", backend, c);
                // fused forward: dst = c·dst ^ pad
                let mut got = a_buf.clone();
                bulk::mul_xor_slice_on(backend, &mut got[off..], c, b);
                let want: Vec<u8> =
                    a.iter().zip(b).map(|(&d, &p)| mul(c, d) ^ p).collect();
                prop_assert_eq!(&got[off..], &want[..], "mul_xor {} c {}", backend, c);
                // fused inverse: dst = c·(dst ^ pad)
                let mut got = a_buf.clone();
                bulk::xor_mul_slice_on(backend, &mut got[off..], c, b);
                let want: Vec<u8> =
                    a.iter().zip(b).map(|(&d, &p)| mul(c, d ^ p)).collect();
                prop_assert_eq!(&got[off..], &want[..], "xor_mul {} c {}", backend, c);
            }
            // dot: Σ a[i]·b[i]
            let want = a.iter().zip(b).fold(0u8, |acc, (&x, &y)| acc ^ mul(x, y));
            prop_assert_eq!(bulk::dot_slice8_on(backend, a, b), want, "dot {}", backend);
        }
    }

    /// The GF(2¹⁶) kernels (axpy, scale, dot) on every available
    /// backend, across the per-call table-build threshold.
    #[test]
    fn gf16_kernels_match_oracle_on_every_backend(
        seed in any::<u64>(),
        len in 0usize..200,
        off in 0usize..9,
        c_any in any::<u16>(),
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a_buf: Vec<Gf65536> =
            (0..off + len).map(|_| Gf65536::random(&mut rng)).collect();
        let b_buf: Vec<Gf65536> =
            (0..off + len).map(|_| Gf65536::random(&mut rng)).collect();
        let a = &a_buf[off..];
        let b = &b_buf[off..];
        for backend in slicing_gf::simd::available_backends() {
            for c in [Gf65536(c_any), Gf65536(0), Gf65536(1)] {
                let mut got = a_buf.clone();
                bulk::mul_add_slice16_on(backend, &mut got[off..], c, b);
                let want: Vec<Gf65536> =
                    a.iter().zip(b).map(|(&d, &s)| d.add(c.mul(s))).collect();
                prop_assert_eq!(&got[off..], &want[..], "axpy16 {} c {:?}", backend, c);
                let mut got = a_buf.clone();
                bulk::mul_slice16_on(backend, &mut got[off..], c);
                let want: Vec<Gf65536> = a.iter().map(|&d| c.mul(d)).collect();
                prop_assert_eq!(&got[off..], &want[..], "scale16 {} c {:?}", backend, c);
            }
            let want = a
                .iter()
                .zip(b)
                .fold(Gf65536::zero(), |acc, (&x, &y)| acc.add(x.mul(y)));
            prop_assert_eq!(bulk::dot_slice16_on(backend, a, b), want, "dot16 {}", backend);
        }
    }

    /// The fused multi-output kernel equals independent scalar axpy
    /// sweeps for every output/source shape on every backend.
    #[test]
    fn fused_kernel_matches_oracle_on_every_backend(
        seed in any::<u64>(),
        len in 0usize..300,
        nout in 1usize..7,
        nsrc in 1usize..7,
    ) {
        use rand::{rngs::StdRng, Rng, RngCore, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let srcs: Vec<Vec<u8>> = (0..nsrc)
            .map(|_| {
                let mut v = vec![0u8; len];
                rng.fill_bytes(&mut v);
                v
            })
            .collect();
        let inits: Vec<Vec<u8>> = (0..nout)
            .map(|_| {
                let mut v = vec![0u8; len];
                rng.fill_bytes(&mut v);
                v
            })
            .collect();
        // Include the c = 0 / c = 1 edges among random coefficients.
        let coeffs: Vec<u8> = (0..nout * nsrc)
            .map(|i| match i % 5 {
                0 => 0,
                1 => 1,
                _ => rng.gen(),
            })
            .collect();
        let mut want = inits.clone();
        for (j, w) in want.iter_mut().enumerate() {
            for (i, s) in srcs.iter().enumerate() {
                let c = coeffs[j * nsrc + i];
                for (d, &x) in w.iter_mut().zip(s) {
                    *d ^= Gf256::new(c).mul(Gf256::new(x)).value();
                }
            }
        }
        let src_refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
        for backend in slicing_gf::simd::available_backends() {
            let mut outs = inits.clone();
            let mut out_refs: Vec<&mut [u8]> =
                outs.iter_mut().map(|o| o.as_mut_slice()).collect();
            bulk::mul_add_fused_on(backend, &mut out_refs, &coeffs, &src_refs);
            prop_assert_eq!(&outs, &want, "fused {} {}x{}", backend, nout, nsrc);
        }
    }
}
