//! aarch64 NEON kernels: `TBL` split-nibble table multiplies and
//! `vmull_p8` carry-less dot products.
//!
//! NEON is baseline on aarch64, so unlike the x86_64 module there is no
//! width split — everything runs on 128-bit vectors. The structure
//! mirrors [`super::x86`]: safe wrappers around `#[target_feature]`
//! inner loops, scalar table-row tails, and byte reinterpretation of
//! `#[repr(transparent)]` [`Gf65536`] slices (aarch64 runs
//! little-endian here, matching the `u16` lo/hi byte-plane layout the
//! kernels assume).
//!
//! Two conveniences x86 lacks:
//!
//! * `vld2q_u8`/`vst2q_u8` deinterleave/reinterleave the GF(2¹⁶) lo/hi
//!   byte planes for free during the load/store itself;
//! * `vmull_p8` is a native 8-lane carry-less 8×8→16 multiply, so the
//!   GF(2⁸) dot product accumulates unreduced lane products directly,
//!   and the GF(2¹⁶) dot splits each 16×16 product into four 8×8
//!   partials (schoolbook over byte planes) with one reduction at the
//!   end.

use std::arch::aarch64::*;

use crate::bulk;
use crate::gf65536::{self, Gf65536};
use crate::simd::tables::{self, NIB8};

/// Matches the x86 kernel: outputs fused per group of four accumulators.
pub(crate) const FUSED_GROUP: usize = 4;

/// Minimum element count for the GF(2¹⁶) table kernels (the per-call
/// 128-byte table build must amortize), as on x86.
pub(crate) const MIN_LEN16: usize = 64;

// ---- GF(2⁸) slice transforms ----------------------------------------------

const OP_AXPY: u8 = 0;
const OP_MUL_INTO: u8 = 1;
const OP_MUL: u8 = 2;
const OP_MUL_XOR: u8 = 3;
const OP_XOR_MUL: u8 = 4;

/// One 16-lane split-nibble multiply via two `TBL` lookups.
/// Register-only (no memory access), so it is a *safe* target-feature
/// fn: the engines that call it already carry the `neon` feature.
#[inline]
#[target_feature(enable = "neon")]
fn mul_block(tlo: uint8x16_t, thi: uint8x16_t, v: uint8x16_t) -> uint8x16_t {
    let lo = vandq_u8(v, vdupq_n_u8(0x0f));
    let hi = vshrq_n_u8(v, 4);
    veorq_u8(vqtbl1q_u8(tlo, lo), vqtbl1q_u8(thi, hi))
}

/// NEON transform engine over 16-byte blocks (32-byte main loop);
/// returns bytes processed. `other` must equal `dst` for `OP_MUL` and
/// may not otherwise alias.
///
/// # Safety
///
/// `dst` and `other` must each be valid for `len` bytes (`dst` for
/// writes); they must not partially overlap (equal is fine). NEON is
/// baseline on aarch64, so there is no feature precondition.
#[target_feature(enable = "neon")]
unsafe fn transform8<const OP: u8>(
    dst: *mut u8,
    other: *const u8,
    len: usize,
    tab: &[u8; 32],
) -> usize {
    // SAFETY: per the fn contract, every `dst`/`other` offset below is
    // `< len`; `vld1q_u8`/`vst1q_u8` are unaligned ops; `tab` is a
    // 32-byte array so `tab + 16` is in bounds.
    unsafe {
        let tlo = vld1q_u8(tab.as_ptr());
        let thi = vld1q_u8(tab.as_ptr().add(16));
        let mut i = 0usize;
        macro_rules! block {
            ($off:expr) => {{
                let o = $off;
                let r = match OP {
                    OP_AXPY => {
                        let d = vld1q_u8(dst.add(o));
                        let s = vld1q_u8(other.add(o));
                        veorq_u8(d, mul_block(tlo, thi, s))
                    }
                    OP_MUL_INTO => mul_block(tlo, thi, vld1q_u8(other.add(o))),
                    OP_MUL => mul_block(tlo, thi, vld1q_u8(dst.add(o))),
                    OP_MUL_XOR => {
                        let d = vld1q_u8(dst.add(o));
                        let p = vld1q_u8(other.add(o));
                        veorq_u8(mul_block(tlo, thi, d), p)
                    }
                    _ => {
                        let d = vld1q_u8(dst.add(o));
                        let p = vld1q_u8(other.add(o));
                        mul_block(tlo, thi, veorq_u8(d, p))
                    }
                };
                vst1q_u8(dst.add(o), r);
            }};
        }
        while i + 32 <= len {
            block!(i);
            block!(i + 16);
            i += 32;
        }
        if i + 16 <= len {
            block!(i);
            i += 16;
        }
        i
    }
}

#[inline]
fn run_transform8<const OP: u8>(dst: *mut u8, other: *const u8, len: usize, c: u8) -> usize {
    // SAFETY: NEON is baseline on aarch64; pointers cover `len` valid
    // bytes per the safe wrappers' slice arguments.
    unsafe { transform8::<OP>(dst, other, len, &NIB8[c as usize]) }
}

/// `dst[i] ^= c · src[i]` (generic `c`).
pub(crate) fn axpy8(dst: &mut [u8], c: u8, src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = run_transform8::<OP_AXPY>(dst.as_mut_ptr(), src.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for (d, &s) in dst[n..].iter_mut().zip(&src[n..]) {
        *d ^= row[s as usize];
    }
}

/// `dst[i] = c · dst[i]` (in-place scale).
pub(crate) fn mul8(dst: &mut [u8], c: u8) {
    let n = run_transform8::<OP_MUL>(dst.as_mut_ptr(), dst.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for d in dst[n..].iter_mut() {
        *d = row[*d as usize];
    }
}

/// `dst[i] = c · src[i]` (scale into a destination).
pub(crate) fn mul8_into(dst: &mut [u8], c: u8, src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = run_transform8::<OP_MUL_INTO>(dst.as_mut_ptr(), src.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for (d, &s) in dst[n..].iter_mut().zip(&src[n..]) {
        *d = row[s as usize];
    }
}

/// `dst[i] = c · dst[i] ^ pad[i]` (fused forward per-hop transform).
pub(crate) fn mul_xor8(dst: &mut [u8], c: u8, pad: &[u8]) {
    debug_assert_eq!(dst.len(), pad.len());
    let n = run_transform8::<OP_MUL_XOR>(dst.as_mut_ptr(), pad.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for (d, &p) in dst[n..].iter_mut().zip(&pad[n..]) {
        *d = row[*d as usize] ^ p;
    }
}

/// `dst[i] = c · (dst[i] ^ pad[i])` (fused inverse per-hop transform).
pub(crate) fn xor_mul8(dst: &mut [u8], c: u8, pad: &[u8]) {
    debug_assert_eq!(dst.len(), pad.len());
    let n = run_transform8::<OP_XOR_MUL>(dst.as_mut_ptr(), pad.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for (d, &p) in dst[n..].iter_mut().zip(&pad[n..]) {
        *d = row[(*d ^ p) as usize];
    }
}

// ---- GF(2⁸) fused multi-accumulator ---------------------------------------

/// NEON fused multi-accumulator kernel, as `fused8_avx2` on x86.
///
/// # Safety
///
/// Every pointer in `outs` and `srcs` must be valid for `len` bytes
/// (`outs` for writes), all mutually disjoint; `coeffs` must hold
/// `outs.len() · srcs.len()` entries; `outs.len() ≤ FUSED_GROUP`.
#[target_feature(enable = "neon")]
unsafe fn fused8_neon(outs: &[*mut u8], coeffs: &[u8], srcs: &[*const u8], len: usize) -> usize {
    // SAFETY: per the fn contract, each indexed offset is `< len` on a
    // live disjoint buffer and `NIB8` rows are 32 bytes.
    unsafe {
        let g = outs.len();
        let nsrc = srcs.len();
        let nib = vdupq_n_u8(0x0f);
        let blocks = len / 16 * 16;
        for (si, &sp) in srcs.iter().enumerate() {
            // Hoist this source's per-output tables out of the block loop
            // (2·FUSED_GROUP table registers fit the 32-register file).
            let mut tlo = [vdupq_n_u8(0); FUSED_GROUP];
            let mut thi = [vdupq_n_u8(0); FUSED_GROUP];
            let mut live = [false; FUSED_GROUP];
            for j in 0..g {
                let c = coeffs[j * nsrc + si];
                if c == 0 {
                    continue;
                }
                let tab = &NIB8[c as usize];
                tlo[j] = vld1q_u8(tab.as_ptr());
                thi[j] = vld1q_u8(tab.as_ptr().add(16));
                live[j] = true;
            }
            if !live.contains(&true) {
                continue;
            }
            let mut i = 0usize;
            while i + 16 <= len {
                let s = vld1q_u8(sp.add(i));
                let lo = vandq_u8(s, nib);
                let hi = vshrq_n_u8(s, 4);
                for j in 0..g {
                    if !live[j] {
                        continue;
                    }
                    let op = outs[j].add(i);
                    let acc = vld1q_u8(op);
                    let prod = veorq_u8(vqtbl1q_u8(tlo[j], lo), vqtbl1q_u8(thi[j], hi));
                    vst1q_u8(op, veorq_u8(acc, prod));
                }
                i += 16;
            }
        }
        blocks
    }
}

/// Fused multi-coefficient accumulate (output-major coefficients), as
/// on x86: each source block is loaded once per group of
/// [`FUSED_GROUP`] outputs.
pub(crate) fn fused8(outs: &mut [&mut [u8]], coeffs: &[u8], srcs: &[&[u8]]) {
    let nsrc = srcs.len();
    let len = srcs.first().map_or(0, |s| s.len());
    let src_ptrs: Vec<*const u8> = srcs.iter().map(|s| s.as_ptr()).collect();
    for (chunk_idx, chunk) in outs.chunks_mut(FUSED_GROUP).enumerate() {
        let cbase = chunk_idx * FUSED_GROUP * nsrc;
        let coeffs = &coeffs[cbase..cbase + chunk.len() * nsrc];
        let out_ptrs: Vec<*mut u8> = chunk.iter_mut().map(|o| o.as_mut_ptr()).collect();
        // SAFETY: the `&mut` outputs are disjoint; every pointer covers
        // `len` bytes (asserted by the dispatcher).
        let n = unsafe { fused8_neon(&out_ptrs, coeffs, &src_ptrs, len) };
        for (j, out) in chunk.iter_mut().enumerate() {
            for (si, src) in srcs.iter().enumerate() {
                let c = coeffs[j * nsrc + si];
                if c == 0 {
                    continue;
                }
                let row = bulk::mul_row(c);
                for (d, &s) in out[n..].iter_mut().zip(&src[n..]) {
                    *d ^= row[s as usize];
                }
            }
        }
    }
}

// ---- dot products (vmull_p8) ----------------------------------------------

/// Horizontal XOR of eight 16-bit lanes. Safe: the only memory touched
/// is a local array.
#[inline]
#[target_feature(enable = "neon")]
fn xor_across_u16(v: uint16x8_t) -> u16 {
    let mut lanes = [0u16; 8];
    // SAFETY: `lanes` is a live local [u16; 8] — exactly the 16 bytes
    // `vst1q_u16` writes.
    unsafe { vst1q_u16(lanes.as_mut_ptr(), v) };
    lanes.iter().fold(0, |a, &b| a ^ b)
}

/// GF(2⁸) dot core: 8 unreduced carry-less lane products per
/// `vmull_p8`, XOR-accumulated; returns the unreduced 15-bit
/// accumulator and bytes consumed.
///
/// # Safety
///
/// `a` and `b` must each be valid for `len` bytes.
#[target_feature(enable = "neon")]
unsafe fn dot8_neon(a: *const u8, b: *const u8, len: usize) -> (u32, usize) {
    // SAFETY: per the fn contract, offsets stay `< len` and the loads
    // are unaligned ops.
    unsafe {
        let mut acc = vdupq_n_u16(0);
        let n = len / 16 * 16;
        let mut i = 0usize;
        while i < n {
            let va = vld1q_u8(a.add(i));
            let vb = vld1q_u8(b.add(i));
            let p_lo = vmull_p8(
                vreinterpret_p8_u8(vget_low_u8(va)),
                vreinterpret_p8_u8(vget_low_u8(vb)),
            );
            let p_hi = vmull_p8(
                vreinterpret_p8_u8(vget_high_u8(va)),
                vreinterpret_p8_u8(vget_high_u8(vb)),
            );
            acc = veorq_u16(acc, vreinterpretq_u16_p16(p_lo));
            acc = veorq_u16(acc, vreinterpretq_u16_p16(p_hi));
            i += 16;
        }
        (xor_across_u16(acc) as u32, n)
    }
}

/// Dot product `Σ a[i]·b[i]` over GF(2⁸). Always available on NEON.
pub(crate) fn dot8(a: &[u8], b: &[u8]) -> Option<u8> {
    debug_assert_eq!(a.len(), b.len());
    // SAFETY: NEON is baseline; pointers cover `len` bytes.
    let (un, n) = unsafe { dot8_neon(a.as_ptr(), b.as_ptr(), a.len()) };
    let mut acc = tables::reduce15(un);
    for (&x, &y) in a[n..].iter().zip(&b[n..]) {
        acc ^= bulk::mul_row(x)[y as usize];
    }
    Some(acc)
}

/// GF(2¹⁶) dot core: each 16×16 carry-less product splits into four
/// 8×8 partials over the `vld2q_u8`-deinterleaved byte planes —
/// `a·b = aₗbₗ ⊕ (aₗbₕ ⊕ aₕbₗ)·x⁸ ⊕ aₕbₕ·x¹⁶` — each partial an
/// 8-lane `vmull_p8`, accumulated per partial and recombined once at
/// the end. Returns the unreduced 31-bit accumulator and elements
/// consumed.
///
/// # Safety
///
/// `a` and `b` must each be valid for `2 · len_elems` bytes.
#[target_feature(enable = "neon")]
unsafe fn dot16_neon(a: *const u8, b: *const u8, len_elems: usize) -> (u64, usize) {
    // SAFETY: per the fn contract, byte offsets stay `< 2 · len_elems`
    // and the deinterleaving loads are unaligned ops.
    unsafe {
        let mut acc_ll = vdupq_n_u16(0);
        let mut acc_mid = vdupq_n_u16(0);
        let mut acc_hh = vdupq_n_u16(0);
        let n = len_elems / 16 * 16;
        let mut i = 0usize;
        while i < n * 2 {
            let va = vld2q_u8(a.add(i)); // va.0 = lo bytes, va.1 = hi bytes
            let vb = vld2q_u8(b.add(i));
            let (al_l, al_h) = (
                vreinterpret_p8_u8(vget_low_u8(va.0)),
                vreinterpret_p8_u8(vget_high_u8(va.0)),
            );
            let (ah_l, ah_h) = (
                vreinterpret_p8_u8(vget_low_u8(va.1)),
                vreinterpret_p8_u8(vget_high_u8(va.1)),
            );
            let (bl_l, bl_h) = (
                vreinterpret_p8_u8(vget_low_u8(vb.0)),
                vreinterpret_p8_u8(vget_high_u8(vb.0)),
            );
            let (bh_l, bh_h) = (
                vreinterpret_p8_u8(vget_low_u8(vb.1)),
                vreinterpret_p8_u8(vget_high_u8(vb.1)),
            );
            acc_ll = veorq_u16(acc_ll, vreinterpretq_u16_p16(vmull_p8(al_l, bl_l)));
            acc_ll = veorq_u16(acc_ll, vreinterpretq_u16_p16(vmull_p8(al_h, bl_h)));
            acc_mid = veorq_u16(acc_mid, vreinterpretq_u16_p16(vmull_p8(al_l, bh_l)));
            acc_mid = veorq_u16(acc_mid, vreinterpretq_u16_p16(vmull_p8(al_h, bh_h)));
            acc_mid = veorq_u16(acc_mid, vreinterpretq_u16_p16(vmull_p8(ah_l, bl_l)));
            acc_mid = veorq_u16(acc_mid, vreinterpretq_u16_p16(vmull_p8(ah_h, bl_h)));
            acc_hh = veorq_u16(acc_hh, vreinterpretq_u16_p16(vmull_p8(ah_l, bh_l)));
            acc_hh = veorq_u16(acc_hh, vreinterpretq_u16_p16(vmull_p8(ah_h, bh_h)));
            i += 32;
        }
        let ll = xor_across_u16(acc_ll) as u64;
        let mid = xor_across_u16(acc_mid) as u64;
        let hh = xor_across_u16(acc_hh) as u64;
        (ll ^ (mid << 8) ^ (hh << 16), n)
    }
}

/// Dot product `Σ a[i]·b[i]` over GF(2¹⁶). Always available on NEON.
pub(crate) fn dot16(a: &[Gf65536], b: &[Gf65536]) -> Option<Gf65536> {
    debug_assert_eq!(a.len(), b.len());
    // SAFETY: NEON is baseline; `#[repr(transparent)]` slices cover
    // `2 · len` bytes.
    let (un, n) = unsafe { dot16_neon(a.as_ptr() as *const u8, b.as_ptr() as *const u8, a.len()) };
    let mut acc = tables::reduce31(un);
    let t = gf65536::tables();
    for (&x, &y) in a[n..].iter().zip(&b[n..]) {
        if x.0 != 0 && y.0 != 0 {
            acc ^= t.exp[t.log[x.0 as usize] as usize + t.log[y.0 as usize] as usize];
        }
    }
    Some(Gf65536(acc))
}

// ---- GF(2¹⁶) slice transforms ---------------------------------------------

const OP16_AXPY: u8 = 0;
const OP16_MUL: u8 = 1;

/// NEON GF(2¹⁶) engine over 16-element (32-byte) blocks; `vld2q_u8`
/// hands the kernels deinterleaved lo/hi byte planes directly. Returns
/// elements processed.
///
/// # Safety
///
/// `dst` and `src` must each be valid for `2 · len_elems` bytes (`dst`
/// for writes; equal pointers are fine, partial overlap is not).
#[target_feature(enable = "neon")]
unsafe fn transform16<const OP: u8>(
    dst: *mut u8,
    src: *const u8,
    len_elems: usize,
    tab: &[u8; 128],
) -> usize {
    // SAFETY: per the fn contract, byte offsets stay `< 2 · len_elems`;
    // `tab` covers 128 bytes so `tab + o` is in bounds for every
    // `o ≤ 112` used below.
    unsafe {
        let tl0 = vld1q_u8(tab.as_ptr());
        let tl1 = vld1q_u8(tab.as_ptr().add(16));
        let tl2 = vld1q_u8(tab.as_ptr().add(32));
        let tl3 = vld1q_u8(tab.as_ptr().add(48));
        let th0 = vld1q_u8(tab.as_ptr().add(64));
        let th1 = vld1q_u8(tab.as_ptr().add(80));
        let th2 = vld1q_u8(tab.as_ptr().add(96));
        let th3 = vld1q_u8(tab.as_ptr().add(112));
        let nib = vdupq_n_u8(0x0f);
        let n = len_elems / 16 * 16;
        let mut i = 0usize; // byte index
        while i < n * 2 {
            let v = vld2q_u8(src.add(i));
            let n0 = vandq_u8(v.0, nib);
            let n1 = vshrq_n_u8(v.0, 4);
            let n2 = vandq_u8(v.1, nib);
            let n3 = vshrq_n_u8(v.1, 4);
            let rlo = veorq_u8(
                veorq_u8(vqtbl1q_u8(tl0, n0), vqtbl1q_u8(tl1, n1)),
                veorq_u8(vqtbl1q_u8(tl2, n2), vqtbl1q_u8(tl3, n3)),
            );
            let rhi = veorq_u8(
                veorq_u8(vqtbl1q_u8(th0, n0), vqtbl1q_u8(th1, n1)),
                veorq_u8(vqtbl1q_u8(th2, n2), vqtbl1q_u8(th3, n3)),
            );
            let out = if OP == OP16_AXPY {
                let d = vld2q_u8(dst.add(i));
                uint8x16x2_t(veorq_u8(d.0, rlo), veorq_u8(d.1, rhi))
            } else {
                uint8x16x2_t(rlo, rhi)
            };
            vst2q_u8(dst.add(i), out);
            i += 32;
        }
        n
    }
}

#[inline]
fn run_transform16<const OP: u8>(
    dst: *mut u8,
    src: *const u8,
    len_elems: usize,
    c: Gf65536,
) -> usize {
    let tab = tables::tab16(c);
    // SAFETY: NEON is baseline; pointers cover `2 · len_elems` bytes.
    unsafe { transform16::<OP>(dst, src, len_elems, &tab) }
}

/// `acc[i] ^= c · src[i]` over GF(2¹⁶) (generic `c`).
pub(crate) fn axpy16(acc: &mut [Gf65536], c: Gf65536, src: &[Gf65536]) {
    debug_assert_eq!(acc.len(), src.len());
    let n = run_transform16::<OP16_AXPY>(
        acc.as_mut_ptr() as *mut u8,
        src.as_ptr() as *const u8,
        acc.len(),
        c,
    );
    let t = gf65536::tables();
    let lc = t.log[c.0 as usize] as usize;
    for (a, &s) in acc[n..].iter_mut().zip(&src[n..]) {
        if s.0 != 0 {
            a.0 ^= t.exp[lc + t.log[s.0 as usize] as usize];
        }
    }
}

/// `row[i] = c · row[i]` over GF(2¹⁶) (generic `c`, in place).
pub(crate) fn mul16(row: &mut [Gf65536], c: Gf65536) {
    let n = run_transform16::<OP16_MUL>(
        row.as_mut_ptr() as *mut u8,
        row.as_ptr() as *const u8,
        row.len(),
        c,
    );
    let t = gf65536::tables();
    let lc = t.log[c.0 as usize] as usize;
    for v in row[n..].iter_mut() {
        if v.0 != 0 {
            v.0 = t.exp[lc + t.log[v.0 as usize] as usize];
        }
    }
}
