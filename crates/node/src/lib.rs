//! Deployable overlay node: a `slicing-node` daemon binary wrapping the
//! combined relay/session runtime ([`slicing_overlay::spawn_node`])
//! behind a config file, plus the orchestration pieces that turn a pile
//! of such processes into a fleet.
//!
//! The crate splits four ways:
//!
//! - [`config`] — the TOML-subset config schema (`NodeConfig`) with a
//!   hand-rolled parser and typed errors (the build environment is
//!   offline, so no serde/toml dependency).
//! - [`metrics`] — a plaintext/Prometheus exposition endpoint served
//!   over the vendored tokio TCP listener, iterating the engines'
//!   `counters()` enumerations so the exported text can never drift
//!   from the atomics.
//! - [`runtime`] — glue from a parsed [`config::NodeConfig`] to a
//!   running node: transport attach, `spawn_node`, metrics server,
//!   stdin-EOF/`POST /shutdown` triggered clean exit.
//! - [`orchestrator`] — a driver-side process harness
//!   ([`orchestrator::Fleet`]) that writes configs, spawns/kills/
//!   restarts `slicing-node` children and scrapes their metrics; the
//!   `soak` binary builds the churn soak on top of it.

#![forbid(unsafe_code)]

pub mod config;
pub mod metrics;
pub mod orchestrator;
pub mod runtime;

pub use config::{ConfigError, NodeConfig};
pub use orchestrator::Fleet;
