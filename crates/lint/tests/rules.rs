//! Analyzer regression suite: every rule fires on its fixture at the
//! right file:line, the allowlist suppresses only with a justification,
//! seeded regressions in *real* workspace sources are caught, and the
//! live workspace itself stays clean (with a current ledger).

use slicing_lint::{
    analyze_source, analyze_tree, diff_ledger, render_ledger, Report, RULE_ALLOW,
    RULE_GUARD_AWAIT, RULE_HOT_PATH, RULE_SAFETY, RULE_VENDOR_DRIFT,
};

fn lines_for(report: &Report, rule: &str) -> Vec<usize> {
    let mut v: Vec<usize> = report
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn safety_rule_fires_per_site() {
    let report = analyze_source(
        "fixtures/safety_missing.rs",
        include_str!("fixtures/safety_missing.rs"),
    );
    // The undocumented `unsafe fn` (L3) and the bare block (L4).
    assert_eq!(lines_for(&report, RULE_SAFETY), vec![3, 4]);
    assert_eq!(report.findings.len(), 2);
    assert_eq!(report.inventory.len(), 2);
    assert!(report.findings.iter().all(|f| f.file == "fixtures/safety_missing.rs"));
}

#[test]
fn safety_rule_accepts_contracts() {
    let report = analyze_source("fixtures/safety_ok.rs", include_str!("fixtures/safety_ok.rs"));
    assert!(report.findings.is_empty(), "unexpected: {:?}", report.findings);
    // Both sites still land in the ledger inventory, annotated.
    assert_eq!(report.inventory.len(), 2);
    assert!(report.inventory.iter().all(|s| s.safety.is_some()));
    assert_eq!(report.inventory[0].name.as_deref(), Some("contract"));
}

#[test]
fn hot_path_rule_fires_per_violation_class() {
    let report = analyze_source(
        "fixtures/hot_path_bad.rs",
        include_str!("fixtures/hot_path_bad.rs"),
    );
    // Vec::new, format!, .clone, .unwrap, assert! — one line each;
    // debug_assert! (L15) and the unmarked `cold` fn stay silent.
    assert_eq!(lines_for(&report, RULE_HOT_PATH), vec![10, 11, 12, 13, 14]);
    assert_eq!(report.findings.len(), 5);
    let msgs: Vec<&str> = report.findings.iter().map(|f| f.message.as_str()).collect();
    assert!(msgs.iter().any(|m| m.contains("`Shard::handle`") || m.contains("`handle`")));
}

#[test]
fn allowlist_requires_justification() {
    let report = analyze_source(
        "fixtures/hot_path_allow.rs",
        include_str!("fixtures/hot_path_allow.rs"),
    );
    // The justified allow (L5) suppresses L6. The bare allow (L7) is
    // itself a finding and does NOT suppress L8; the unknown rule name
    // (L13) is a finding too.
    assert_eq!(lines_for(&report, RULE_HOT_PATH), vec![8]);
    assert_eq!(lines_for(&report, RULE_ALLOW), vec![7, 13]);
    assert_eq!(report.findings.len(), 3);
}

#[test]
fn guard_across_await_fires_only_on_live_guards() {
    let report = analyze_source(
        "fixtures/guard_await.rs",
        include_str!("fixtures/guard_await.rs"),
    );
    // bad_held's binding (L4) and bad_conditional's whole-conditional
    // guard (L9); the scoped, dropped and await-free-conditional
    // variants are clean.
    assert_eq!(lines_for(&report, RULE_GUARD_AWAIT), vec![4, 9]);
    assert_eq!(report.findings.len(), 2);
}

#[test]
fn seeded_regression_deleted_safety_comment() {
    // Real workspace source: the SIMD kernels are clean as checked in…
    let src = include_str!("../../gf/src/simd/x86.rs");
    let clean = analyze_source("crates/gf/src/simd/x86.rs", src);
    assert!(clean.findings.is_empty(), "unexpected: {:?}", clean.findings);
    assert!(!clean.inventory.is_empty());

    // …and deleting the SAFETY comments re-fires the rule on the spot.
    let broken = src.replace("// SAFETY:", "// (safety note removed)");
    assert_ne!(src, broken);
    let report = analyze_source("crates/gf/src/simd/x86.rs", &broken);
    assert!(
        report.findings.iter().any(|f| f.rule == RULE_SAFETY),
        "stripping SAFETY comments must produce findings"
    );
}

#[test]
fn seeded_regression_unwrap_in_hot_path() {
    // Real workspace source: the relay data plane is clean as checked in…
    let src = include_str!("../../core/src/relay.rs");
    let clean = analyze_source("crates/core/src/relay.rs", src);
    assert!(clean.findings.is_empty(), "unexpected: {:?}", clean.findings);

    // …and an unwrap seeded into the marked packet path is caught on
    // the exact line it lands on.
    let anchor = "self.stats.packets_in += 1;";
    let seeded = format!("{anchor} let _n = self.flows.get(&packet.header.flow_id).unwrap();");
    let broken = src.replace(anchor, &seeded);
    assert_ne!(src, broken);
    let expected_line = broken
        .lines()
        .position(|l| l.contains(".unwrap()"))
        .map(|i| i + 1)
        .expect("seeded line present");
    let report = analyze_source("crates/core/src/relay.rs", &broken);
    let hits = lines_for(&report, RULE_HOT_PATH);
    assert_eq!(hits, vec![expected_line], "findings: {:?}", report.findings);
}

#[test]
fn ledger_round_trips_and_classifies_vendor_drift() {
    let report = analyze_source(
        "vendor/fake/src/lib.rs",
        include_str!("fixtures/safety_ok.rs"),
    );
    let generated = render_ledger(&report.inventory);
    // Current ledger: no drift.
    assert!(diff_ledger(&generated, &generated).is_empty());
    // New vendor unsafe vs an empty ledger: vendor-drift, not plain drift.
    let drift = diff_ledger("# UNSAFE_LEDGER\n", &generated);
    assert!(!drift.is_empty());
    assert!(drift.iter().all(|f| f.rule == RULE_VENDOR_DRIFT));
    // A stale entry that left the tree is drift in the other direction.
    let stale = format!("{generated}- vendor/gone/src/lib.rs L9 unsafe block — SAFETY: x\n");
    assert_eq!(diff_ledger(&stale, &generated).len(), 1);
}

#[test]
fn workspace_is_clean_and_ledger_is_current() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("workspace root");
    let report = analyze_tree(root).expect("walk workspace");
    assert!(
        report.findings.is_empty(),
        "workspace lint findings: {:#?}",
        report.findings
    );
    // Fixture trees (deliberate violations) must not leak into the walk.
    assert!(report.inventory.iter().all(|s| !s.file.contains("fixtures/")));
    let existing = std::fs::read_to_string(root.join(slicing_lint::LEDGER_FILE))
        .expect("UNSAFE_LEDGER.md is checked in");
    let drift = diff_ledger(&existing, &render_ledger(&report.inventory));
    assert!(drift.is_empty(), "ledger drift: {:#?}", drift);
}
