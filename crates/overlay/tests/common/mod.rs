//! Fixtures shared by the overlay's end-to-end suites.
//!
//! Each integration test binary compiles this module separately, so a
//! given binary may use only a slice of it — hence the `dead_code`
//! allowance. The bounded-retry polling discipline itself lives in
//! `slicing_overlay::testutil` (the library's single copy, shared with
//! the `slicing-node` process-level suites); this module re-exports it
//! so test code has one import path for fixtures and polling alike.

#![allow(dead_code)]

use std::time::Duration;

use slicing_core::{DataMode, DestPlacement, GraphParams};
use slicing_overlay::experiment::Transport;
use slicing_overlay::{
    ChurnSessionConfig, SessionTransferConfig, SessionTransferReport, UdpFaults,
};

#[allow(unused_imports)]
pub use slicing_overlay::testutil::{wait_until, wait_until_for};

/// A 96 KB stream over UDP with `d′ = 3` path redundancy (the same
/// extra-path headroom the session proptests run under loss).
pub fn udp_cfg(faults: UdpFaults) -> SessionTransferConfig {
    SessionTransferConfig {
        params: GraphParams::new(3, 2)
            .with_paths(3)
            .with_dest_placement(DestPlacement::LastStage),
        transport: Transport::Udp(faults),
        payload_len: 96_000,
        messages: 1,
        relay_shards: 2,
        session_shards: 2,
        timeout: Duration::from_secs(120),
        ..SessionTransferConfig::default()
    }
}

/// Assert a [`udp_cfg`] run delivered its single message byte-identically
/// with the source window drained and live transport feedback.
pub fn assert_delivered(report: &SessionTransferReport) {
    assert!(report.established, "report: {report:?}");
    assert_eq!(report.messages_delivered, 1, "report: {report:?}");
    assert!(report.bytes_match, "byte-identical delivery: {report:?}");
    assert!(
        report.source_drained,
        "acks must drain the window: {report:?}"
    );
    assert_eq!(report.payload_bytes, 96_000);
    let udp = report.udp.expect("UDP run must carry transport stats");
    assert!(udp.datagrams_sent > 0, "stats: {udp:?}");
    assert!(udp.feedback_received > 0, "cc must see echoes: {udp:?}");
}

/// Kill the relay at (stage 2, index 0) 40% into the session.
pub fn kill_stage2(
    transport: Transport,
    dp: usize,
    mode: DataMode,
    repair: bool,
) -> ChurnSessionConfig {
    ChurnSessionConfig {
        params: GraphParams::new(5, 2)
            .with_paths(dp)
            .with_data_mode(mode)
            .with_dest_placement(DestPlacement::LastStage),
        transport,
        kills: vec![(0.4, 2, 0)],
        repair,
        timeout: Duration::from_secs(30),
        ..ChurnSessionConfig::default()
    }
}
