//! Fig. 8: anonymity vs split factor d (N = 10000, L = 8, f ∈ {0.1, 0.4}).

use slicing_anonymity::montecarlo::average_anonymity;
use slicing_anonymity::ScenarioParams;
use slicing_bench::{banner, RunOpts, Table};

fn main() {
    let opts = RunOpts::from_args();
    let trials = opts.trials(1000);
    banner(
        "Figure 8 — anonymity vs split factor d",
        "N=10000, L=8, f in {0.1, 0.4}",
        "at low f, larger d slightly lowers anonymity (more exposure); \
         at high f, larger d raises it (full-stage compromise harder)",
    );
    let mut table = Table::new(&[
        "d",
        "src_f0.1",
        "dst_f0.1",
        "src_f0.4",
        "dst_f0.4",
    ]);
    for d in 2..=12usize {
        let low = average_anonymity(
            &ScenarioParams::new(10_000, 8, d, 0.1),
            trials,
            opts.seed,
        );
        let high = average_anonymity(
            &ScenarioParams::new(10_000, 8, d, 0.4),
            trials,
            opts.seed,
        );
        table.row(&[d as f64, low.source, low.dest, high.source, high.dest]);
    }
    table.print();
}
