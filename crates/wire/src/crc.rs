//! CRC-32 (IEEE 802.3) for slice-slot integrity.
//!
//! Slots that a relay could not fill (failed parent) are padded with
//! random bytes (§4.3.6); the final consumer of a slice uses this CRC to
//! tell real slices from padding before decoding. This is an integrity
//! sanity check, not an authenticity mechanism — authenticity of data
//! comes from the AEAD layer.

/// CRC-32 lookup table (reflected, polynomial 0xEDB88320).
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// Compute the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append the CRC-32 of `data` (little-endian) to it.
pub fn append_crc(data: &mut Vec<u8>) {
    let c = crc32(data);
    data.extend_from_slice(&c.to_le_bytes());
}

/// Verify and strip a trailing CRC-32; returns the payload on success.
pub fn check_crc(data: &[u8]) -> Option<&[u8]> {
    if data.len() < 4 {
        return None;
    }
    let (payload, tail) = data.split_at(data.len() - 4);
    let expected = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crc32(payload) == expected {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_check_round_trip() {
        let mut data = b"slice contents".to_vec();
        append_crc(&mut data);
        assert_eq!(check_crc(&data).unwrap(), b"slice contents");
    }

    #[test]
    fn corruption_detected() {
        let mut data = b"slice contents".to_vec();
        append_crc(&mut data);
        data[3] ^= 0x40;
        assert!(check_crc(&data).is_none());
    }

    #[test]
    fn too_short_rejected() {
        assert!(check_crc(&[1, 2, 3]).is_none());
    }

    #[test]
    fn random_padding_rejected() {
        // A random slot should essentially never pass the CRC.
        use rand::Rng;
        let mut rng = rand::thread_rng();
        for _ in 0..50 {
            let data: Vec<u8> = (0..40).map(|_| rng.gen()).collect();
            assert!(check_crc(&data).is_none());
        }
    }
}
