//! Minimal wire format for the onion baseline.

/// Kind of onion packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OnionPacketKind {
    /// Circuit establishment (carries the remaining onion).
    Setup,
    /// Data cell.
    Data,
}

/// An onion packet: circuit id in the clear (like Tor's circID), kind,
/// sequence number and opaque payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OnionPacket {
    /// Cleartext per-hop circuit id.
    pub circuit: u64,
    /// Setup or data.
    pub kind: OnionPacketKind,
    /// Data sequence number (0 for setup).
    pub seq: u32,
    /// Payload (onion remainder or layered ciphertext).
    pub payload: Vec<u8>,
}

/// Decode failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OnionWireError {
    /// Too short.
    Truncated,
    /// Unknown kind byte.
    BadKind,
}

impl std::fmt::Display for OnionWireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnionWireError::Truncated => write!(f, "onion packet truncated"),
            OnionWireError::BadKind => write!(f, "unknown onion packet kind"),
        }
    }
}

impl std::error::Error for OnionWireError {}

impl OnionPacket {
    /// Serialize.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(13 + self.payload.len());
        out.extend_from_slice(&self.circuit.to_le_bytes());
        out.push(match self.kind {
            OnionPacketKind::Setup => 0,
            OnionPacketKind::Data => 1,
        });
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserialize.
    pub fn decode(bytes: &[u8]) -> Result<OnionPacket, OnionWireError> {
        if bytes.len() < 13 {
            return Err(OnionWireError::Truncated);
        }
        let circuit = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let kind = match bytes[8] {
            0 => OnionPacketKind::Setup,
            1 => OnionPacketKind::Data,
            _ => return Err(OnionWireError::BadKind),
        };
        let seq = u32::from_le_bytes(bytes[9..13].try_into().unwrap());
        Ok(OnionPacket {
            circuit,
            kind,
            seq,
            payload: bytes[13..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let p = OnionPacket {
            circuit: 0xABCD,
            kind: OnionPacketKind::Data,
            seq: 9,
            payload: vec![1, 2, 3],
        };
        assert_eq!(OnionPacket::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn truncated() {
        assert_eq!(
            OnionPacket::decode(&[0u8; 5]).unwrap_err(),
            OnionWireError::Truncated
        );
    }

    #[test]
    fn bad_kind() {
        let mut bytes = OnionPacket {
            circuit: 1,
            kind: OnionPacketKind::Setup,
            seq: 0,
            payload: vec![],
        }
        .encode();
        bytes[8] = 7;
        assert_eq!(
            OnionPacket::decode(&bytes).unwrap_err(),
            OnionWireError::BadKind
        );
    }
}
