//! Anonymity evaluation (§6, Appendix A): the entropy metric, the
//! colluding-attacker knowledge model, the closed-form formulas, and the
//! Chaum-mix baseline — everything Figs. 7–10 need.
//!
//! The simulation procedure mirrors §6.2: per trial, mark each graph node
//! malicious with probability `f` (all attackers collude), work out which
//! consecutive stages the attacker can link (flow-ids change per hop, so
//! only attackers in successive stages can be sure they observe the same
//! flow), apply the Appendix-A probability assignments (Eqs. 8 and 11,
//! with the Case-1 full-stage-decoding shortcuts), convert to entropy
//! (Eq. 5), and average over many trials.

#![forbid(unsafe_code)]

pub mod chaum;
pub mod formulas;
pub mod metric;
pub mod montecarlo;
pub mod scenario;

pub use metric::{anonymity_from_groups, ProbabilityGroup};
pub use montecarlo::{average_anonymity, AnonymityEstimate};
pub use scenario::ScenarioParams;
