//! Vendored, dependency-free subset of the `bytes` API: the [`Buf`] /
//! [`BufMut`] cursor traits over byte slices plus a growable
//! [`BytesMut`], little-endian accessors only (all this workspace's wire
//! formats are little-endian).

#![forbid(unsafe_code)]

/// A cursor over readable bytes; implemented for `&[u8]`, which advances
/// the slice itself as bytes are consumed.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;
    /// View of the remaining bytes.
    fn chunk(&self) -> &[u8];
    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        *self = &self[cnt..];
    }
}

/// A sink for writable bytes.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Copy out as a plain vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u8(7);
        buf.put_u16_le(0x0102);
        buf.put_u32_le(0x03040506);
        buf.put_u64_le(0x0708090A0B0C0D0E);
        buf.put_slice(b"xyz");
        let v = buf.to_vec();
        let mut r: &[u8] = &v;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x0102);
        assert_eq!(r.get_u32_le(), 0x03040506);
        assert_eq!(r.get_u64_le(), 0x0708090A0B0C0D0E);
        let mut tail = [0u8; 3];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(r.remaining(), 0);
    }
}
