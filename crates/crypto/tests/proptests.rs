//! Property-based tests for the crypto substrate (bignum laws, cipher and
//! AEAD round trips, scalar/SIMD byte-identity sweeps).

use proptest::prelude::*;
use slicing_crypto::{aead, simd, Backend, BigUint, ChaCha20, SealingKey, Sha256, SymmetricKey};

proptest! {
    #[test]
    fn bignum_add_commutes(a in any::<u128>(), b in any::<u128>()) {
        let (x, y) = (BigUint::from_u128(a), BigUint::from_u128(b));
        prop_assert_eq!(x.add(&y), y.add(&x));
    }

    #[test]
    fn bignum_mul_distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let (x, y, z) = (
            BigUint::from_u64(a),
            BigUint::from_u64(b),
            BigUint::from_u64(c),
        );
        prop_assert_eq!(
            x.mul(&y.add(&z)),
            x.mul(&y).add(&x.mul(&z))
        );
    }

    #[test]
    fn bignum_div_rem_invariant(a in any::<u128>(), b in 1u128..) {
        let (x, y) = (BigUint::from_u128(a), BigUint::from_u128(b));
        let (q, r) = x.div_rem(&y);
        prop_assert_eq!(q.mul(&y).add(&r), x);
        prop_assert!(r.cmp(&y) == std::cmp::Ordering::Less);
    }

    #[test]
    fn bignum_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let n = BigUint::from_bytes_be(&bytes);
        let round = BigUint::from_bytes_be(&n.to_bytes_be());
        prop_assert_eq!(n, round);
    }

    #[test]
    fn bignum_shift_round_trip(a in any::<u128>(), s in 0usize..128) {
        let n = BigUint::from_u128(a);
        prop_assert_eq!(n.shl(s).shr(s), n);
    }

    #[test]
    fn bignum_mod_pow_multiplicative(
        a in 1u64..1000, b in 1u64..1000, e in 0u64..32, m in 2u64..100_000
    ) {
        // (a*b)^e = a^e * b^e mod m
        let (abig, bbig, ebig, mbig) = (
            BigUint::from_u64(a),
            BigUint::from_u64(b),
            BigUint::from_u64(e),
            BigUint::from_u64(m),
        );
        let lhs = abig.mul(&bbig).mod_pow(&ebig, &mbig);
        let rhs = abig.mod_pow(&ebig, &mbig).mul_mod(&bbig.mod_pow(&ebig, &mbig), &mbig);
        prop_assert_eq!(lhs, rhs);
    }

    #[test]
    fn chacha_round_trip(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                         mut data in proptest::collection::vec(any::<u8>(), 0..600)) {
        let original = data.clone();
        ChaCha20::xor(&key, &nonce, 0, &mut data);
        ChaCha20::xor(&key, &nonce, 0, &mut data);
        prop_assert_eq!(data, original);
    }

    #[test]
    fn aead_round_trip(key in any::<[u8; 32]>(), seed in any::<u64>(),
                       msg in proptest::collection::vec(any::<u8>(), 0..400)) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let k = SymmetricKey(key);
        let sealed = aead::seal(&k, &msg, &mut rng);
        prop_assert_eq!(aead::open(&k, &sealed).unwrap(), msg);
    }

    #[test]
    fn aead_bitflip_detected(key in any::<[u8; 32]>(), seed in any::<u64>(),
                             msg in proptest::collection::vec(any::<u8>(), 1..200),
                             flip_bit in any::<u16>()) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let k = SymmetricKey(key);
        let mut sealed = aead::seal(&k, &msg, &mut rng);
        let pos = (flip_bit as usize / 8) % sealed.len();
        sealed[pos] ^= 1 << (flip_bit % 8);
        prop_assert!(aead::open(&k, &sealed).is_err());
    }

    // ---- scalar/SIMD byte-identity sweeps (gf backend-sweep idiom) --------
    //
    // Every available backend must produce bytes identical to the scalar
    // oracle at arbitrary lengths (including empty and odd sizes),
    // unaligned buffer offsets, and arbitrary stream split points.

    #[test]
    fn chacha_backends_identical(key in any::<[u8; 32]>(), nonce in any::<[u8; 12]>(),
                                 counter in any::<u16>(),
                                 len in 0usize..700, offset in 0usize..17,
                                 split in 0usize..700) {
        // An oversized buffer sliced at `offset` exercises unaligned
        // loads/stores in the SIMD engines.
        let base: Vec<u8> = (0..len + offset).map(|i| (i as u8).wrapping_mul(37)).collect();
        let mut reference = base.clone();
        ChaCha20::new_on(Backend::Scalar, &key, &nonce, counter as u32)
            .apply(&mut reference[offset..]);
        for backend in simd::available_backends() {
            let mut data = base.clone();
            let mut c = ChaCha20::new_on(backend, &key, &nonce, counter as u32);
            // Split the stream at an arbitrary point: buffered-tail
            // handoff between calls must stay byte-exact too.
            let cut = offset + split.min(len);
            c.apply(&mut data[offset..cut]);
            c.apply(&mut data[cut..]);
            prop_assert_eq!(&data, &reference, "{} backend", backend);
        }
    }

    #[test]
    fn sha256_backends_identical(data in proptest::collection::vec(any::<u8>(), 0..700),
                                 offset in 0usize..17) {
        let reference = Sha256::digest_on(Backend::Scalar, &data[offset.min(data.len())..]);
        for backend in simd::available_backends() {
            prop_assert_eq!(
                Sha256::digest_on(backend, &data[offset.min(data.len())..]),
                reference,
                "{} backend", backend
            );
        }
    }

    #[test]
    fn seal_open_backends_identical(key in any::<[u8; 32]>(), seed in any::<u64>(),
                                    msg in proptest::collection::vec(any::<u8>(), 0..600)) {
        use rand::{rngs::StdRng, SeedableRng};
        let k = SymmetricKey(key);
        let mut rng = StdRng::seed_from_u64(seed);
        let reference = SealingKey::new_on(Backend::Scalar, &k).seal(&msg, &mut rng);
        for backend in simd::available_backends() {
            let sk = SealingKey::new_on(backend, &k);
            // Same seed → same nonce draw → sealed bytes must be
            // bit-identical across backends.
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sealed = Vec::new();
            sk.seal_into(&msg, &mut sealed, &mut rng);
            prop_assert_eq!(&sealed, &reference, "{} backend", backend);
            let opened = sk.open_in_place(&mut sealed);
            prop_assert!(opened.is_ok(), "{} backend open failed", backend);
            prop_assert_eq!(opened.unwrap(), &msg[..], "{} backend", backend);
        }
    }
}
