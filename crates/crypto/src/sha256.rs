//! SHA-256 (FIPS 180-4), incremental API with runtime-dispatched
//! compression.
//!
//! Every hasher carries a [`Backend`] chosen at construction (the
//! process-wide [`crate::simd::backend`] by default, or pinned with
//! [`Sha256::new_on`] for tests that sweep engines). Whole-block spans
//! are compressed in one dispatched call so the SIMD engines see
//! multi-block inputs; only sub-block remainders are buffered.

use crate::simd::{self, Backend};

/// FIPS 180-4 §4.2.2 round constants, shared with the SIMD engines.
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// FIPS 180-4 §5.3.3 initial hash value, shared with the HMAC midstate
/// builder and the SIMD engine tests.
pub(crate) const IV: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// The 64 scalar rounds over an already-expanded message schedule.
/// Shared between [`compress_scalar`] and the vectorized-schedule SIMD
/// engine (which expands `w` with SIMD, then runs these rounds).
pub(crate) fn rounds(state: &mut [u32; 8], w: &[u32; 64]) {
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Scalar reference compression of one 64-byte block — the oracle the
/// SIMD engines are tested against.
pub(crate) fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for i in 0..16 {
        w[i] = u32::from_be_bytes([
            block[i * 4],
            block[i * 4 + 1],
            block[i * 4 + 2],
            block[i * 4 + 3],
        ]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    rounds(state, &w);
}

/// Compress a whole-block span (`blocks.len() % 64 == 0`) into `state`
/// on the given backend. The single dispatched call per span is what
/// lets the SIMD engines amortize their state packing over many blocks.
pub(crate) fn compress_blocks(backend: Backend, state: &mut [u32; 8], blocks: &[u8]) {
    debug_assert_eq!(blocks.len() % 64, 0);
    if backend == Backend::Simd && simd::kernels::sha256_compress(state, blocks) {
        return;
    }
    for block in blocks.chunks_exact(64) {
        // chunks_exact(64) always yields 64-byte slices.
        compress_scalar(state, block.try_into().expect("64-byte chunk"));
    }
}

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Unprocessed input (always < 64 bytes after `update`).
    buf: [u8; 64],
    buf_len: usize,
    /// Total message length in bytes.
    total: u64,
    backend: Backend,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// New empty hasher on the process-wide detected backend.
    pub fn new() -> Self {
        Self::new_on(simd::backend())
    }

    /// New empty hasher pinned to a specific [`Backend`] (tests sweep
    /// every available engine against the scalar reference with this).
    pub fn new_on(backend: Backend) -> Self {
        Sha256 {
            state: IV,
            buf: [0; 64],
            buf_len: 0,
            total: 0,
            backend,
        }
    }

    /// Resume from a captured compression state: `state` after `total`
    /// bytes (a multiple of 64) have been absorbed. This is the HMAC
    /// midstate fast path — the ipad/opad blocks are compressed once
    /// per key instead of once per message.
    pub(crate) fn from_midstate(backend: Backend, state: [u32; 8], total: u64) -> Self {
        debug_assert_eq!(total % 64, 0);
        Sha256 {
            state,
            buf: [0; 64],
            buf_len: 0,
            total,
            backend,
        }
    }

    /// Absorb more input.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress_blocks(self.backend, &mut self.state, &block);
                self.buf_len = 0;
            }
        }
        let span = data.len() / 64 * 64;
        if span > 0 {
            compress_blocks(self.backend, &mut self.state, &data[..span]);
            data = &data[span..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish and produce the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manually append length (update would double-count `total`).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        compress_blocks(self.backend, &mut self.state, &block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..(i + 1) * 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    /// Expose the compression state (whole-block inputs only) so tests
    /// can validate midstate resumption.
    #[cfg(test)]
    pub(crate) fn midstate(&self) -> [u32; 8] {
        debug_assert_eq!(self.buf_len, 0);
        self.state
    }

    /// One-shot convenience on the detected backend.
    pub fn digest(data: &[u8]) -> [u8; 32] {
        Self::digest_on(simd::backend(), data)
    }

    /// One-shot convenience pinned to a specific [`Backend`].
    pub fn digest_on(backend: Backend, data: &[u8]) -> [u8; 32] {
        let mut h = Sha256::new_on(backend);
        h.update(data);
        h.finalize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 / NIST vectors, swept across every available backend.
    #[test]
    fn fips_vectors_all_backends() {
        let cases: &[(&[u8], &str)] = &[
            (
                b"",
                "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
            ),
            (
                b"abc",
                "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
            ),
            (
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
                "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
            ),
        ];
        for backend in crate::simd::available_backends() {
            for (input, want) in cases {
                assert_eq!(
                    hex(&Sha256::digest_on(backend, input)),
                    *want,
                    "{backend} backend, input len {}",
                    input.len()
                );
            }
        }
    }

    #[test]
    fn million_a_all_backends() {
        let data = vec![b'a'; 1_000_000];
        for backend in crate::simd::available_backends() {
            assert_eq!(
                hex(&Sha256::digest_on(backend, &data)),
                "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0",
                "{backend} backend"
            );
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for backend in crate::simd::available_backends() {
            let oneshot = Sha256::digest_on(backend, &data);
            // Feed in awkward chunk sizes crossing block boundaries.
            for chunk in [1usize, 7, 63, 64, 65, 200] {
                let mut h = Sha256::new_on(backend);
                for c in data.chunks(chunk) {
                    h.update(c);
                }
                assert_eq!(h.finalize(), oneshot, "{backend} backend, chunk size {chunk}");
            }
        }
    }

    #[test]
    fn exactly_one_block_of_padding_boundary() {
        // 55 and 56 byte messages straddle the padding boundary.
        for len in [55usize, 56, 57, 63, 64, 119, 120] {
            let data = vec![0xABu8; len];
            let d1 = Sha256::digest(&data);
            let mut h = Sha256::new();
            h.update(&data);
            assert_eq!(h.finalize(), d1);
        }
    }

    #[test]
    fn backends_agree_on_random_lengths() {
        let backends = crate::simd::available_backends();
        for len in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 129, 400, 1500, 4096] {
            let data: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(17)).collect();
            let reference = Sha256::digest_on(Backend::Scalar, &data);
            for &b in &backends {
                assert_eq!(Sha256::digest_on(b, &data), reference, "{b} backend, len {len}");
            }
        }
    }

    #[test]
    fn midstate_resume_matches_flat_hash() {
        for backend in crate::simd::available_backends() {
            let prefix = [0x5Cu8; 64];
            let tail = b"the rest of the message";
            let mut flat = Sha256::new_on(backend);
            flat.update(&prefix);
            flat.update(tail);
            let mut pre = Sha256::new_on(backend);
            pre.update(&prefix);
            let mut resumed = Sha256::from_midstate(backend, pre.midstate(), 64);
            resumed.update(tail);
            assert_eq!(resumed.finalize(), flat.finalize(), "{backend} backend");
        }
    }
}
