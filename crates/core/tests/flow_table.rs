//! Flow-table resource-guard tests: eviction at `max_flows`, Dead-flow
//! quarantine, and the timer-wheel idle GC firing *exactly* at
//! `flow_ttl` — including deadlines that land mid-bucket and activity
//! that re-arms an expiry.

use slicing_core::{
    DataMode, DestPlacement, GraphParams, OverlayAddr, Packet, PacketKind, RelayConfig, RelayNode,
    SendInstr, SourceSession, Tick,
};
use slicing_wire::{FlowId, PacketHeader};

/// A syntactically valid setup packet whose slots are noise (decode can
/// never succeed — the flow will go Dead on the setup-flush timeout).
fn garbage_setup(flow: u64, fill: u8) -> Packet {
    Packet::new(
        PacketHeader {
            kind: PacketKind::Setup,
            flow_id: FlowId(flow),
            seq: 0,
            d: 2,
            slot_count: 2,
            slot_len: 20,
        },
        vec![vec![fill; 20], vec![fill.wrapping_add(1); 20]],
    )
}

/// Establish one real flow on `relay` (at `now`) using the graph
/// machinery, mirroring the paper's stage-1 relay: returns the flow's
/// data-packet template (one send per parent) for later traffic.
fn establish_flow(relay: &mut RelayNode, now: Tick, seed: u64) -> (SourceSession, Vec<SendInstr>) {
    let params = GraphParams::new(3, 2)
        .with_paths(2)
        .with_data_mode(DataMode::Recode)
        .with_dest_placement(DestPlacement::LastStage);
    let pseudo: Vec<OverlayAddr> = (0..2u64).map(|i| OverlayAddr(10_000 + i)).collect();
    let candidates: Vec<OverlayAddr> = (0..16u64).map(|i| OverlayAddr(20_000 + i)).collect();
    let (mut source, setup) =
        SourceSession::establish(params, &pseudo, &candidates, OverlayAddr(1), seed)
            .expect("valid params");
    let established_before = relay.stats().flows_established;
    let target = source.graph().stages[1][0];
    for instr in setup {
        if instr.to == target {
            relay.handle_packet(now, instr.from, &instr.packet);
        }
    }
    assert_eq!(
        relay.stats().flows_established,
        established_before + 1,
        "flow must establish"
    );
    let (_, sends) = source.send_message(b"traffic").expect("within chunk budget");
    let template = sends.into_iter().filter(|s| s.to == target).collect();
    (source, template)
}

#[test]
fn eviction_at_max_flows_and_readmission() {
    let config = RelayConfig {
        max_flows: 3,
        flow_ttl_ms: 1_000,
        ..RelayConfig::default()
    };
    let mut relay = RelayNode::with_config(OverlayAddr(1), 7, config);
    // Fill the table.
    for f in 0..3u64 {
        relay.handle_packet(Tick(0), OverlayAddr(100 + f), &garbage_setup(f, f as u8));
    }
    assert_eq!(relay.flow_count(), 3);
    // Over capacity: dropped, not admitted, nothing evicted early.
    relay.handle_packet(Tick(10), OverlayAddr(200), &garbage_setup(99, 9));
    assert_eq!(relay.flow_count(), 3);
    assert_eq!(relay.stats().drops, 1);
    assert_eq!(relay.stats().flows_evicted, 0);
    // The TTL wheel entry evicts all three; capacity frees up.
    relay.poll(Tick(5_000));
    assert_eq!(relay.flow_count(), 0);
    assert_eq!(relay.stats().flows_evicted, 3);
    relay.handle_packet(Tick(5_001), OverlayAddr(201), &garbage_setup(42, 5));
    assert_eq!(relay.flow_count(), 1, "capacity must be reusable after GC");
}

#[test]
fn dead_flow_quarantine_swallows_traffic_until_ttl() {
    let config = RelayConfig {
        setup_flush_ms: 500,
        flow_ttl_ms: 2_000,
        ..RelayConfig::default()
    };
    let mut relay = RelayNode::with_config(OverlayAddr(1), 7, config);
    // Two garbage parents → decode attempt fails on the forced flush.
    relay.handle_packet(Tick(0), OverlayAddr(10), &garbage_setup(5, 1));
    relay.handle_packet(Tick(0), OverlayAddr(11), &garbage_setup(5, 3));
    relay.poll(Tick(500));
    assert_eq!(relay.stats().setup_failures, 1);
    assert_eq!(relay.flow_count(), 1, "Dead flow still occupies its slot");

    // Quarantine: data for the dead flow is swallowed (no sends, counted
    // as drops), and does not resurrect the flow.
    let drops_before = relay.stats().drops;
    let data = Packet::new(
        PacketHeader {
            kind: PacketKind::Data,
            flow_id: FlowId(5),
            seq: 1,
            d: 2,
            slot_count: 1,
            slot_len: 20,
        },
        vec![vec![7u8; 20]],
    );
    let out = relay.handle_packet(Tick(600), OverlayAddr(10), &data);
    assert!(out.sends.is_empty());
    assert_eq!(relay.stats().drops, drops_before + 1);
    assert_eq!(relay.flow_count(), 1);

    // Dead flows age from first_seen: evicted exactly at the TTL.
    relay.poll(Tick(1_999));
    assert_eq!(relay.flow_count(), 1, "one tick early must not evict");
    relay.poll(Tick(2_000));
    assert_eq!(relay.flow_count(), 0);
    assert_eq!(relay.stats().flows_evicted, 1);
}

#[test]
fn idle_gc_fires_exactly_at_flow_ttl_mid_bucket() {
    // A TTL that is not a multiple of the 50 ms wheel granularity: the
    // deadline lands mid-bucket, and the partial-bucket re-sweep must
    // fire it on the first poll with now >= deadline — never early.
    let config = RelayConfig {
        flow_ttl_ms: 1_234,
        ..RelayConfig::default()
    };
    let mut relay = RelayNode::with_config(OverlayAddr(1), 7, config);
    relay.handle_packet(Tick(0), OverlayAddr(10), &garbage_setup(8, 1));
    relay.poll(Tick(1_233));
    assert_eq!(relay.flow_count(), 1, "must not fire before the deadline");
    relay.poll(Tick(1_234));
    assert_eq!(relay.flow_count(), 0, "must fire exactly at flow_ttl");
}

#[test]
fn activity_rearms_flow_expiry() {
    let config = RelayConfig {
        flow_ttl_ms: 1_000,
        data_flush_ms: 100,
        ..RelayConfig::default()
    };
    let mut relay = RelayNode::with_config(OverlayAddr(42), 7, config);
    let (_source, template) = establish_flow(&mut relay, Tick(0), 77);
    assert_eq!(relay.flow_count(), 1);

    // Traffic at t=600 refreshes last_activity.
    for instr in &template {
        relay.handle_packet(Tick(600), instr.from, &instr.packet);
    }
    // The original expiry (armed at admission for t=1000) fires, sees the
    // refreshed activity, and re-arms instead of evicting.
    relay.poll(Tick(1_000));
    assert_eq!(relay.flow_count(), 1, "active flow must survive its first TTL");
    // One tick before the re-armed deadline: still alive.
    relay.poll(Tick(1_599));
    assert_eq!(relay.flow_count(), 1);
    // Exactly last_activity + ttl: evicted.
    relay.poll(Tick(1_600));
    assert_eq!(relay.flow_count(), 0);
    assert_eq!(relay.stats().flows_evicted, 1);
}

#[test]
fn wheel_flushes_partial_data_gather_on_deadline() {
    // One parent delivers, the other never does: the wheel's data-flush
    // deadline — not a table scan — must flush the partial gather.
    let config = RelayConfig {
        data_flush_ms: 777,
        ..RelayConfig::default()
    };
    let mut relay = RelayNode::with_config(OverlayAddr(42), 7, config);
    let (_source, template) = establish_flow(&mut relay, Tick(0), 99);
    let first = &template[0];
    let out = relay.handle_packet(Tick(1_000), first.from, &first.packet);
    assert!(out.sends.is_empty(), "gather incomplete, nothing to send yet");
    let out = relay.poll(Tick(1_776));
    assert!(out.sends.is_empty(), "one tick before the flush deadline");
    let out = relay.poll(Tick(1_777));
    assert!(
        !out.sends.is_empty(),
        "flush deadline must forward the partial gather"
    );
}

#[test]
fn flushed_gathers_are_dropped_after_quarantine() {
    // Per-seq gather state must not accumulate for the lifetime of a
    // long-lived flow: after the flush deadline (plus one quarantine
    // window for timeout-flushed gathers) the wheel removes the entry.
    let config = RelayConfig {
        data_flush_ms: 100,
        flow_ttl_ms: 60_000,
        ..RelayConfig::default()
    };
    let mut relay = RelayNode::with_config(OverlayAddr(42), 7, config);
    let (mut source, _) = establish_flow(&mut relay, Tick(0), 55);
    let target = source.graph().stages[1][0];
    // Stream 50 messages, polling as a daemon would.
    for m in 0..50u64 {
        let now = Tick(1_000 + m * 10);
        let (_, sends) = source.send_message(b"stream").expect("within chunk budget");
        for instr in sends.into_iter().filter(|s| s.to == target) {
            relay.handle_packet(now, instr.from, &instr.packet);
        }
        relay.poll(now);
    }
    // All gathers complete immediately (both parents deliver); after the
    // flush windows pass (and the flow's stale setup-flush entry fires
    // as a no-op), the wheel must have reaped every gather. What remains
    // is the flow's constant-size steady state: its expiry entry plus
    // the keepalive and liveness-check heartbeats.
    relay.poll(Tick(5_000));
    assert_eq!(relay.flow_count(), 1, "flow itself stays");
    assert_eq!(
        relay.pending_deadlines(),
        3,
        "only flow-expiry + keepalive + liveness may remain once all gathers are reaped"
    );
}

#[test]
fn replay_after_gather_reap_is_not_redelivered() {
    // Place the destination in stage 1 so our relay IS the receiver,
    // deliver a message, let the wheel reap the per-seq gather, then
    // replay the captured packets: the flow-level replay guard must
    // reject re-delivery even though the gather (and its `delivered`
    // flag) is gone.
    let config = RelayConfig {
        data_flush_ms: 1_000,
        ..RelayConfig::default()
    };
    let params = GraphParams::new(3, 2)
        .with_paths(2)
        .with_data_mode(DataMode::Map)
        .with_dest_placement(DestPlacement::Stage(1));
    let pseudo: Vec<OverlayAddr> = (0..2u64).map(|i| OverlayAddr(10_000 + i)).collect();
    let candidates: Vec<OverlayAddr> = (0..16u64).map(|i| OverlayAddr(20_000 + i)).collect();
    let (mut source, setup) =
        SourceSession::establish(params, &pseudo, &candidates, OverlayAddr(1), 31)
            .expect("valid params");
    let dest = source.graph().dest;
    assert_eq!(dest.stage, 1, "destination must sit in stage 1");
    let target = source.graph().stages[dest.stage][dest.index];
    let mut relay = RelayNode::with_config(target, 7, config);
    let mut receiver = false;
    for instr in setup {
        if instr.to == target {
            let out = relay.handle_packet(Tick(0), instr.from, &instr.packet);
            receiver |= out.established.iter().any(|&(_, r)| r);
        }
    }
    assert!(receiver, "relay must establish as the flow's destination");

    let (_, sends) = source.send_message(b"once only").expect("within chunk budget");
    let to_dest: Vec<SendInstr> = sends.into_iter().filter(|s| s.to == target).collect();
    let mut delivered = 0;
    for instr in &to_dest {
        delivered += relay
            .handle_packet(Tick(1_000), instr.from, &instr.packet)
            .received
            .len();
    }
    assert_eq!(delivered, 1, "first delivery succeeds");

    // Let the wheel flush-fire and then reap the gather.
    relay.poll(Tick(2_000));
    relay.poll(Tick(3_100));

    // Replay the exact same packets.
    let mut redelivered = 0;
    for instr in &to_dest {
        redelivered += relay
            .handle_packet(Tick(3_500), instr.from, &instr.packet)
            .received
            .len();
    }
    assert_eq!(redelivered, 0, "replayed seq must not be re-delivered");
    assert_eq!(relay.stats().messages_received, 1);
}

#[test]
fn idle_poll_does_not_touch_live_flows() {
    // With many live flows and nothing expired, poll emits nothing and
    // consumes no wheel entries — the O(flows) scan is gone; cost is
    // O(buckets swept), independent of table size.
    let mut relay = RelayNode::new(OverlayAddr(1), 7);
    for f in 0..100u64 {
        relay.handle_packet(Tick(0), OverlayAddr(100 + f), &garbage_setup(f, f as u8));
    }
    assert_eq!(relay.flow_count(), 100);
    let armed = relay.pending_deadlines();
    assert!(armed >= 200, "setup-flush + expiry per flow");
    for now in [Tick(1), Tick(100), Tick(1_999)] {
        let out = relay.poll(now);
        assert!(out.sends.is_empty() && out.received.is_empty());
    }
    assert_eq!(
        relay.pending_deadlines(),
        armed,
        "idle polls must not consume or re-create deadlines"
    );
    assert_eq!(relay.flow_count(), 100);
}
