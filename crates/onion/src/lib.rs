//! Onion-routing baselines (§2, §7.2, §8.1).
//!
//! Two comparators the paper evaluates against:
//!
//! 1. **Standard onion routing** — the sender wraps the route-setup
//!    message in layers of public-key encryption (hybrid RSA + ChaCha20
//!    per layer); each relay strips one layer, learns its session key and
//!    next hop, and forwards. Data then flows down the single circuit
//!    under telescoped symmetric encryption, exactly the "computationally
//!    efficient symmetric session keys for the data transfer; public key
//!    cryptography only for the route setup" configuration of §7.2.
//! 2. **Onion routing with erasure codes** (§8.1) — the strongest
//!    churn-hardened variant the authors could construct for onion
//!    routing: `d′` disjoint circuits carry an MDS-coded message that
//!    survives any `d′ − d` circuit failures, but — unlike information
//!    slicing — relays cannot regenerate lost redundancy inside the
//!    network.
//!
//! The crate is sans-IO in the same style as `slicing-core`, so the same
//! drivers (test net, tokio overlay, churn simulator) run both protocols
//! and the figure harnesses compare like with like.

#![forbid(unsafe_code)]

pub mod circuit;
pub mod erasure;
pub mod relay;
pub mod wire;

pub use circuit::{CircuitHandle, OnionError, OnionSend, OnionSource};
pub use erasure::ErasureOnionSource;
pub use relay::{OnionRelay, OnionRelayOutput};
pub use wire::{OnionPacket, OnionPacketKind};

use std::collections::HashMap;

use slicing_crypto::{RsaKeyPair, RsaPublicKey};
use slicing_graph::OverlayAddr;

/// The PKI onion routing assumes: every node's public key, as served by a
/// directory (Tor's directory servers / Tarzan's gossip, §2).
#[derive(Clone, Default)]
pub struct Directory {
    keys: HashMap<OverlayAddr, RsaPublicKey>,
}

impl Directory {
    /// Empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a node's public key.
    pub fn insert(&mut self, addr: OverlayAddr, key: RsaPublicKey) {
        self.keys.insert(addr, key);
    }

    /// Look up a node's public key.
    pub fn get(&self, addr: OverlayAddr) -> Option<&RsaPublicKey> {
        self.keys.get(&addr)
    }

    /// Number of registered nodes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Generate a keypair for `addr`, register the public half, return
    /// the private half (convenience for spinning up test networks).
    pub fn register<R: rand::Rng + ?Sized>(
        &mut self,
        addr: OverlayAddr,
        bits: usize,
        rng: &mut R,
    ) -> RsaKeyPair {
        let kp = RsaKeyPair::generate(bits, rng);
        self.insert(addr, kp.public.clone());
        kp
    }
}
