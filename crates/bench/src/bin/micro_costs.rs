//! §7.1 microbenchmarks: coding/decoding cost per packet, implied
//! maximum output rate, and memory footprint — the in-text table of the
//! implementation section.
//!
//! The paper (Celeron 800 MHz): coding ≈ d GF multiplications per byte;
//! at d = 5, ~60 µs per 1500 B packet → ~200 Mb/s ceiling; memory
//! footprint d × 1500 B.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;
use slicing_bench::{banner, RunOpts, Table};
use slicing_codec::{decode, encode, recombine};

fn main() {
    let opts = RunOpts::from_args();
    let reps = opts.trials(2000);
    banner(
        "§7.1 — coding microbenchmarks (1500 B packets)",
        "per-packet encode/decode/recombine cost and implied max rate",
        "encode cost grows ~linearly with d; hundreds of Mb/s on modern \
         hardware (paper: 200 Mb/s at d=5 on a Celeron 800)",
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let packet = vec![0xABu8; 1500];
    let mut table = Table::new(&[
        "d",
        "encode_us",
        "decode_us",
        "recombine_us",
        "max_rate_mbps",
        "mem_footprint_B",
    ]);
    for d in 2..=8usize {
        // Encode.
        let start = Instant::now();
        let mut coded = None;
        for _ in 0..reps {
            coded = Some(encode(&packet, d, d, &mut rng));
        }
        let encode_us = start.elapsed().as_micros() as f64 / reps as f64;
        let coded = coded.unwrap();

        // Decode.
        let start = Instant::now();
        for _ in 0..reps {
            let _ = decode(&coded.slices, d).unwrap();
        }
        let decode_us = start.elapsed().as_micros() as f64 / reps as f64;

        // Relay recombination (the per-hop data cost in Recode mode).
        let start = Instant::now();
        for _ in 0..reps {
            let _ = recombine(&coded.slices, &mut rng);
        }
        let recombine_us = start.elapsed().as_micros() as f64 / reps as f64;

        let max_rate_mbps = (1500.0 * 8.0) / encode_us; // Mbit/s
        let mem = (d * (1500 / d + d + 4)) as f64;
        table.row(&[
            d as f64,
            encode_us,
            decode_us,
            recombine_us,
            max_rate_mbps,
            mem,
        ]);
    }
    table.print();
}
