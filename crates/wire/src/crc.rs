//! CRC-32 (IEEE 802.3) for slice-slot integrity.
//!
//! Slots that a relay could not fill (failed parent) are padded with
//! random bytes (§4.3.6); the final consumer of a slice uses this CRC to
//! tell real slices from padding before decoding. This is an integrity
//! sanity check, not an authenticity mechanism — authenticity of data
//! comes from the AEAD layer.

/// Slicing-by-8 CRC-32 lookup tables (reflected, polynomial
/// 0xEDB88320). `TABLES[0]` is the classic byte-at-a-time table; table
/// `k` maps a byte to its CRC contribution from `k` positions earlier,
/// letting the hot loop fold eight input bytes per iteration with eight
/// independent loads instead of eight dependent ones.
///
/// Every data slot in every packet is CRC-sealed on send and CRC-checked
/// on receive, so at 1500-byte packets this is a first-order term of the
/// relay's per-packet cost — the byte-at-a-time loop was costing more
/// than the GF(2⁸) coding it guards.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Compute the CRC-32 of `data` (slicing-by-8: eight bytes per loop
/// iteration, bit-identical to the byte-at-a-time definition).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().expect("4-byte chunk")) ^ crc;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().expect("4-byte chunk"));
        crc = TABLES[7][(lo & 0xFF) as usize]
            ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xFF) as usize]
            ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append the CRC-32 of `data` (little-endian) to it.
pub fn append_crc(data: &mut Vec<u8>) {
    let c = crc32(data);
    data.extend_from_slice(&c.to_le_bytes());
}

/// Write the CRC-32 of `slot[..len-4]` into the trailing 4 bytes — the
/// in-place form of [`append_crc`] for pre-sized slot buffers (the
/// packet builder's "code into the slot, then seal it" pattern).
///
/// # Panics
/// Panics if `slot` is shorter than the 4-byte trailer.
pub fn write_crc(slot: &mut [u8]) {
    assert!(slot.len() >= 4, "slot too short for CRC trailer");
    let (payload, tail) = slot.split_at_mut(slot.len() - 4);
    tail.copy_from_slice(&crc32(payload).to_le_bytes());
}

/// Verify and strip a trailing CRC-32; returns the payload on success.
pub fn check_crc(data: &[u8]) -> Option<&[u8]> {
    if data.len() < 4 {
        return None;
    }
    let (payload, tail) = data.split_at(data.len() - 4);
    let expected = u32::from_le_bytes([tail[0], tail[1], tail[2], tail[3]]);
    if crc32(payload) == expected {
        Some(payload)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
    }

    #[test]
    fn sliced_matches_byte_at_a_time() {
        // The slicing-by-8 fold must be bit-identical to the definition
        // at every length (covering all remainder sizes).
        fn reference(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in data {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        }
        use rand::Rng;
        let mut rng = rand::thread_rng();
        for len in 0..64usize {
            let data: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            assert_eq!(crc32(&data), reference(&data), "len {len}");
        }
        let big: Vec<u8> = (0..1500).map(|_| rng.gen()).collect();
        assert_eq!(crc32(&big), reference(&big));
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_check_round_trip() {
        let mut data = b"slice contents".to_vec();
        append_crc(&mut data);
        assert_eq!(check_crc(&data).unwrap(), b"slice contents");
    }

    #[test]
    fn write_crc_matches_append_crc() {
        let mut appended = b"slice contents".to_vec();
        append_crc(&mut appended);
        let mut in_place = b"slice contents".to_vec();
        in_place.extend_from_slice(&[0xAA; 4]);
        write_crc(&mut in_place);
        assert_eq!(in_place, appended);
        assert_eq!(check_crc(&in_place).unwrap(), b"slice contents");
    }

    #[test]
    fn corruption_detected() {
        let mut data = b"slice contents".to_vec();
        append_crc(&mut data);
        data[3] ^= 0x40;
        assert!(check_crc(&data).is_none());
    }

    #[test]
    fn too_short_rejected() {
        assert!(check_crc(&[1, 2, 3]).is_none());
    }

    #[test]
    fn random_padding_rejected() {
        // A random slot should essentially never pass the CRC.
        use rand::Rng;
        let mut rng = rand::thread_rng();
        for _ in 0..50 {
            let data: Vec<u8> = (0..40).map(|_| rng.gen()).collect();
            assert!(check_crc(&data).is_none());
        }
    }
}
