//! Network condition profiles for the emulated transport.
//!
//! Substitutes for the paper's two testbeds (§7): the 1 Gbps switched LAN
//! of Pentium boxes, and the PlanetLab slice whose nodes are spread
//! world-wide and heavily loaded ("high CPU utilization leading up to the
//! conference deadline").

use rand::Rng;

/// A network/host condition profile.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetProfile {
    /// Minimum one-way propagation delay per link (ms).
    pub min_delay_ms: f64,
    /// Maximum one-way propagation delay per link (ms).
    pub max_delay_ms: f64,
    /// Mean extra per-packet processing delay from host load (ms).
    pub load_delay_ms: f64,
    /// Per-packet loss probability.
    pub loss: f64,
    /// Per-node bandwidth cap in bytes/ms (0 = uncapped).
    pub bandwidth_bytes_per_ms: f64,
    /// Per-link (sender, receiver pair) throughput cap in bytes/ms —
    /// models single-connection limits (TCP window / RTT); this is what
    /// makes `d` parallel paths outperform one path (§7.2).
    pub link_bytes_per_ms: f64,
}

impl NetProfile {
    /// 1 Gbps switched LAN: sub-millisecond RTT, unloaded hosts.
    pub fn lan() -> Self {
        NetProfile {
            min_delay_ms: 0.05,
            max_delay_ms: 0.3,
            load_delay_ms: 0.02,
            loss: 0.0,
            bandwidth_bytes_per_ms: 125_000.0, // ~1 Gbps
            link_bytes_per_ms: 4_000.0,        // ~32 Mbps single stream
        }
    }

    /// PlanetLab-like WAN: world-spanning RTTs, loaded hosts.
    ///
    /// Loss is 0: the paper's prototype ran over TCP, i.e. reliable
    /// links — the emulated transport models that delivery guarantee
    /// while keeping delay/bandwidth realism. Use
    /// [`NetProfile::planetlab_lossy`] to stress the protocol with raw
    /// datagram loss instead.
    pub fn planetlab() -> Self {
        NetProfile {
            min_delay_ms: 20.0,
            max_delay_ms: 150.0,
            load_delay_ms: 15.0,
            loss: 0.0,
            bandwidth_bytes_per_ms: 1_250.0, // ~10 Mbps per node
            link_bytes_per_ms: 110.0,        // ~0.9 Mbps single stream
        }
    }

    /// PlanetLab conditions with 1% raw packet loss (datagram
    /// semantics) — exercises the redundancy/regeneration machinery.
    pub fn planetlab_lossy() -> Self {
        NetProfile {
            loss: 0.01,
            ..Self::planetlab()
        }
    }

    /// Sample the one-way delay for a fresh link.
    pub fn sample_link_delay<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        rng.gen_range(self.min_delay_ms..=self.max_delay_ms)
    }

    /// Sample the per-packet processing delay of a loaded host
    /// (exponential around the mean).
    pub fn sample_load_delay<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.load_delay_ms <= 0.0 {
            return 0.0;
        }
        let u: f64 = rng.gen::<f64>().max(1e-12);
        -self.load_delay_ms * u.ln()
    }

    /// Transmission time of `bytes` under the bandwidth cap (ms).
    pub fn transmission_ms(&self, bytes: usize) -> f64 {
        if self.bandwidth_bytes_per_ms <= 0.0 {
            0.0
        } else {
            bytes as f64 / self.bandwidth_bytes_per_ms
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn lan_is_fast() {
        let lan = NetProfile::lan();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(lan.sample_link_delay(&mut rng) < 1.0);
        }
        // 1500 B at 1 Gbps ≈ 12 µs.
        assert!(lan.transmission_ms(1500) < 0.02);
    }

    #[test]
    fn wan_is_slower_than_lan() {
        let mut rng = StdRng::seed_from_u64(2);
        let lan = NetProfile::lan();
        let wan = NetProfile::planetlab();
        let l = lan.sample_link_delay(&mut rng);
        let w = wan.sample_link_delay(&mut rng);
        assert!(w > l * 10.0);
        assert!(wan.transmission_ms(1500) > lan.transmission_ms(1500));
    }

    #[test]
    fn load_delay_distribution() {
        let wan = NetProfile::planetlab();
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..5000).map(|_| wan.sample_load_delay(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 15.0).abs() < 1.5, "mean {mean}");
    }
}
