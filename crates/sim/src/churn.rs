//! Node-lifetime / churn models (§8.2).
//!
//! The paper's PlanetLab experiments deliberately include "failure-prone"
//! nodes with *perceived lifetimes under 20 minutes* and ask for the
//! probability of finishing a 30-minute session. We model node lifetimes
//! as exponential with configurable mean (the memoryless fit for
//! perceived availability) plus an always-stable fraction.

use rand::Rng;

/// Lifetime model for one node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NodeLifetime {
    /// Never fails during the horizon.
    Stable,
    /// Exponential lifetime with the given mean (minutes).
    Exponential {
        /// Mean lifetime in minutes.
        mean_minutes: f64,
    },
}

impl NodeLifetime {
    /// Sample a failure time in minutes (`None` = survives the horizon).
    pub fn sample_failure<R: Rng + ?Sized>(
        &self,
        horizon_minutes: f64,
        rng: &mut R,
    ) -> Option<f64> {
        match self {
            NodeLifetime::Stable => None,
            NodeLifetime::Exponential { mean_minutes } => {
                let u: f64 = rng.gen::<f64>().max(1e-12);
                let t = -mean_minutes * u.ln();
                (t < horizon_minutes).then_some(t)
            }
        }
    }

    /// Probability of failing within the horizon.
    pub fn failure_probability(&self, horizon_minutes: f64) -> f64 {
        match self {
            NodeLifetime::Stable => 0.0,
            NodeLifetime::Exponential { mean_minutes } => {
                1.0 - (-horizon_minutes / mean_minutes).exp()
            }
        }
    }
}

/// Population-level churn model: a mix of stable and failure-prone nodes.
#[derive(Clone, Copy, Debug)]
pub struct ChurnModel {
    /// Fraction of nodes that are failure-prone.
    pub prone_fraction: f64,
    /// Mean lifetime of failure-prone nodes, minutes (§8.2: < 20).
    pub prone_mean_minutes: f64,
    /// Session length in minutes (§8.2: 30).
    pub session_minutes: f64,
}

impl ChurnModel {
    /// The paper's §8.2 setting: every node failure-prone enough that the
    /// per-session failure probability is `p`.
    pub fn with_failure_probability(p: f64, session_minutes: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1)");
        // Solve 1 - exp(-T/mean) = p for the mean.
        let mean = if p <= f64::EPSILON {
            f64::INFINITY
        } else {
            -session_minutes / (1.0 - p).ln()
        };
        ChurnModel {
            prone_fraction: 1.0,
            prone_mean_minutes: mean,
            session_minutes,
        }
    }

    /// Sample a node's lifetime model.
    pub fn sample_node<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeLifetime {
        if rng.gen::<f64>() < self.prone_fraction {
            NodeLifetime::Exponential {
                mean_minutes: self.prone_mean_minutes,
            }
        } else {
            NodeLifetime::Stable
        }
    }

    /// Sample a process-kill schedule for an orchestrated fleet: for
    /// each of `nodes` churnable processes, `Some(fraction)` places a
    /// kill at that fraction of the run (the node's sampled lifetime
    /// mapped onto the session horizon), `None` leaves it up. The soak
    /// harness maps fractions onto its batch timeline and restarts each
    /// killed process after a fixed grace, so the live population shape
    /// follows §8.2's perceived-lifetime model rather than ad-hoc kill
    /// points.
    pub fn kill_schedule<R: Rng + ?Sized>(&self, nodes: usize, rng: &mut R) -> Vec<Option<f64>> {
        (0..nodes)
            .map(|_| {
                self.sample_node(rng)
                    .sample_failure(self.session_minutes, rng)
                    .map(|t| t / self.session_minutes)
            })
            .collect()
    }

    /// Per-session failure probability of a prone node.
    pub fn session_failure_probability(&self) -> f64 {
        NodeLifetime::Exponential {
            mean_minutes: self.prone_mean_minutes,
        }
        .failure_probability(self.session_minutes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stable_nodes_never_fail() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(NodeLifetime::Stable.sample_failure(30.0, &mut rng), None);
        assert_eq!(NodeLifetime::Stable.failure_probability(30.0), 0.0);
    }

    #[test]
    fn calibrated_failure_probability() {
        for p in [0.1, 0.3, 0.5] {
            let m = ChurnModel::with_failure_probability(p, 30.0);
            assert!(
                (m.session_failure_probability() - p).abs() < 1e-9,
                "calibration off at p={p}"
            );
        }
    }

    #[test]
    fn empirical_failure_rate_matches() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = ChurnModel::with_failure_probability(0.3, 30.0);
        let trials = 20_000;
        let mut failures = 0;
        for _ in 0..trials {
            let node = m.sample_node(&mut rng);
            if node.sample_failure(30.0, &mut rng).is_some() {
                failures += 1;
            }
        }
        let rate = failures as f64 / trials as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn short_lifetimes_fail_often() {
        // §8.2's failure-prone nodes: 15-minute mean over a 30-minute
        // session → ~86% failure.
        let n = NodeLifetime::Exponential {
            mean_minutes: 15.0,
        };
        let p = n.failure_probability(30.0);
        assert!(p > 0.8 && p < 0.9, "p={p}");
    }

    #[test]
    fn kill_schedule_fractions_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = ChurnModel::with_failure_probability(0.5, 30.0);
        let schedule = m.kill_schedule(64, &mut rng);
        assert_eq!(schedule.len(), 64);
        let kills = schedule.iter().flatten().count();
        assert!(kills > 10, "p=0.5 over 64 nodes must kill some: {kills}");
        assert!(kills < 64, "and spare some: {kills}");
        for f in schedule.into_iter().flatten() {
            assert!((0.0..1.0).contains(&f), "fraction {f}");
        }
    }

    #[test]
    fn failure_times_within_horizon() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = NodeLifetime::Exponential { mean_minutes: 10.0 };
        for _ in 0..500 {
            if let Some(t) = n.sample_failure(30.0, &mut rng) {
                assert!((0.0..30.0).contains(&t));
            }
        }
    }
}
