//! Fixture: unsafe without SAFETY comments — both sites must fire.

pub unsafe fn no_contract(p: *const u8) -> u8 {
    unsafe { *p }
}
