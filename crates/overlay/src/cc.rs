//! DELTA-style delay-gradient congestion control for the UDP transport.
//!
//! One [`NeighborCc`] per neighbour link. The receiver side of the UDP
//! transport measures the one-way delay (OWD) of each datagram from its
//! embedded send timestamp and periodically echoes the latest sample
//! back; the sender feeds those samples in here. The controller keeps
//! two EWMAs — the OWD itself and its *gradient* (µs of delay per µs of
//! wall clock) — and runs a three-state machine:
//!
//! ```text
//!            gradient > thresh                owd > base + ceiling
//!   Normal ───────────────────▶ Rising ───────────────────────▶ Congested
//!     ▲        (queue building)   │    (queue standing)             │
//!     │                           │ gradient ≤ thresh               │ owd drains
//!     └───────────────────────────┴──────────────────────────◀──────┘
//! ```
//!
//! Entering `Rising` applies one multiplicative backoff per excursion;
//! `Congested` backs off again on every sample while the standing queue
//! persists. Clean samples in `Normal` recover the rate additively
//! toward the ceiling — AIMD on a delay signal instead of loss, which is
//! what lets two senders sharing a bottleneck converge to a fair split
//! without ever dropping a packet.
//!
//! The send rate is enforced as a token budget: [`NeighborCc::take`]
//! spends tokens (one per datagram), [`NeighborCc::refill`] accrues them
//! at the current rate, capped at a burst ceiling. The transport's pacer
//! schedules refill wakeups on the shared [`TimerWheel`](slicing_core::wheel::TimerWheel)
//! (`slicing_core::wheel`) — no new timer machinery — and the
//! controller's [`pace_hint_ms`](NeighborCc::pace_hint_ms) feeds the
//! session layer so `pace_ms` adapts instead of staying fixed.

use slicing_core::Tick;

/// Tuning knobs for one delay-gradient controller.
#[derive(Clone, Copy, Debug)]
pub struct CcConfig {
    /// EWMA weight for new OWD samples (0..1].
    pub owd_alpha: f64,
    /// EWMA weight for new gradient samples (0..1].
    pub gradient_alpha: f64,
    /// Gradient above which the queue is judged to be building
    /// (dimensionless: µs of added delay per µs of elapsed time).
    pub gradient_thresh: f64,
    /// Standing queue that flips `Rising` into `Congested`: smoothed OWD
    /// above the observed base by this many microseconds.
    pub congested_owd_us: u64,
    /// Multiplicative backoff applied once on entering `Rising`.
    pub backoff_rising: f64,
    /// Multiplicative backoff applied per sample while `Congested`.
    pub backoff_congested: f64,
    /// Additive recovery per clean sample, as a fraction of `max_rate`.
    pub recover_frac: f64,
    /// Rate floor, datagrams per second.
    pub min_rate: f64,
    /// Rate ceiling (and initial rate), datagrams per second.
    pub max_rate: f64,
    /// Token-budget ceiling: the largest burst one refill can accrue.
    pub bucket_cap: f64,
}

impl Default for CcConfig {
    fn default() -> Self {
        CcConfig {
            owd_alpha: 0.3,
            gradient_alpha: 0.25,
            gradient_thresh: 0.05,
            congested_owd_us: 5_000,
            backoff_rising: 0.85,
            backoff_congested: 0.7,
            recover_frac: 0.02,
            min_rate: 2_000.0,
            max_rate: 64_000.0,
            bucket_cap: 256.0,
        }
    }
}

/// The controller's congestion verdict for one neighbour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CcState {
    /// Delay flat: transmit at the current rate, recover toward max.
    Normal,
    /// Delay gradient positive: the bottleneck queue is building.
    Rising,
    /// Standing queue: smoothed OWD sits above base by more than the
    /// configured ceiling.
    Congested,
}

/// A point-in-time copy of one neighbour's congestion-control state,
/// for export through a node's metrics endpoint (the controller itself
/// lives behind the transport's pacer lock).
#[derive(Clone, Copy, Debug)]
pub struct CcSnapshot {
    /// Current verdict of the state machine.
    pub state: CcState,
    /// Allowed send rate, datagrams per second.
    pub rate_dps: f64,
    /// Spendable tokens (datagrams).
    pub tokens: f64,
    /// Smoothed one-way delay, µs (0 until the first sample).
    pub owd_ewma_us: f64,
    /// Observed propagation-delay baseline, µs (0 until the first
    /// sample).
    pub base_owd_us: f64,
}

impl CcState {
    /// Stable lowercase label (metrics exposition).
    pub fn as_str(&self) -> &'static str {
        match self {
            CcState::Normal => "normal",
            CcState::Rising => "rising",
            CcState::Congested => "congested",
        }
    }
}

/// Per-neighbour delay-gradient congestion state plus token budget.
#[derive(Clone, Debug)]
pub struct NeighborCc {
    cfg: CcConfig,
    state: CcState,
    /// Smoothed one-way delay, µs. `None` until the first sample.
    owd_ewma: Option<f64>,
    /// Smoothed OWD gradient (µs/µs).
    gradient_ewma: f64,
    /// Lowest smoothed OWD seen — the propagation-delay baseline.
    base_owd: f64,
    /// Timestamp of the previous sample, µs.
    last_sample_us: u64,
    /// Allowed send rate, datagrams per second.
    rate: f64,
    /// Spendable tokens (datagrams).
    tokens: f64,
    /// Timestamp of the previous refill, µs.
    last_refill_us: u64,
    /// Whether the current `Rising` excursion already took its backoff.
    backed_off: bool,
}

impl NeighborCc {
    /// A controller starting at the rate ceiling (delay-gradient CC
    /// probes *down* from max on congestion, not up from zero).
    pub fn new(cfg: CcConfig) -> Self {
        NeighborCc {
            cfg,
            state: CcState::Normal,
            owd_ewma: None,
            gradient_ewma: 0.0,
            base_owd: f64::INFINITY,
            last_sample_us: 0,
            rate: cfg.max_rate,
            tokens: cfg.bucket_cap,
            last_refill_us: 0,
            backed_off: false,
        }
    }

    /// Feed one echoed delay sample (`owd_us` measured by the receiver
    /// at `now_us` on the sender's clock) and run the state machine.
    pub fn on_sample(&mut self, now_us: u64, owd_us: u64) {
        let owd = owd_us as f64;
        let prev = match self.owd_ewma {
            Some(p) => p,
            None => {
                self.owd_ewma = Some(owd);
                self.base_owd = owd;
                self.last_sample_us = now_us;
                return;
            }
        };
        let smoothed = prev + self.cfg.owd_alpha * (owd - prev);
        self.owd_ewma = Some(smoothed);
        self.base_owd = self.base_owd.min(smoothed);
        let dt = now_us.saturating_sub(self.last_sample_us) as f64;
        self.last_sample_us = now_us;
        if dt > 0.0 {
            let gradient = (smoothed - prev) / dt;
            self.gradient_ewma += self.cfg.gradient_alpha * (gradient - self.gradient_ewma);
        }

        let standing = smoothed - self.base_owd > self.cfg.congested_owd_us as f64;
        let building = self.gradient_ewma > self.cfg.gradient_thresh;
        match (standing, building) {
            (true, _) => {
                // Standing queue: keep shedding rate until it drains.
                self.state = CcState::Congested;
                self.rate = (self.rate * self.cfg.backoff_congested).max(self.cfg.min_rate);
                self.backed_off = true;
            }
            (false, true) => {
                if !self.backed_off {
                    // One multiplicative cut per excursion; re-cutting on
                    // every sample of the same ramp would collapse to the
                    // floor before the first cut had time to act.
                    self.rate = (self.rate * self.cfg.backoff_rising).max(self.cfg.min_rate);
                    self.backed_off = true;
                }
                self.state = CcState::Rising;
            }
            (false, false) => {
                self.state = CcState::Normal;
                self.backed_off = false;
                self.rate = (self.rate + self.cfg.recover_frac * self.cfg.max_rate)
                    .min(self.cfg.max_rate);
            }
        }
    }

    /// Current state.
    pub fn state(&self) -> CcState {
        self.state
    }

    /// Current allowed rate, datagrams per second.
    pub fn rate_dps(&self) -> f64 {
        self.rate
    }

    /// Accrue tokens for the wall clock elapsed since the last refill,
    /// capped at the bucket ceiling.
    pub fn refill(&mut self, now_us: u64) {
        let dt = now_us.saturating_sub(self.last_refill_us) as f64 / 1e6;
        self.last_refill_us = now_us;
        self.tokens = (self.tokens + dt * self.rate).min(self.cfg.bucket_cap);
    }

    /// Refill, then spend up to `want` tokens; returns how many
    /// datagrams may be sent now.
    pub fn take(&mut self, now_us: u64, want: usize) -> usize {
        self.refill(now_us);
        let granted = (self.tokens.floor() as usize).min(want);
        self.tokens -= granted as f64;
        granted
    }

    /// Spendable tokens right now (not refilled first).
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Copy the observable state out (metrics export).
    pub fn snapshot(&self) -> CcSnapshot {
        CcSnapshot {
            state: self.state,
            rate_dps: self.rate,
            tokens: self.tokens,
            owd_ewma_us: self.owd_ewma.unwrap_or(0.0),
            base_owd_us: if self.base_owd.is_finite() {
                self.base_owd
            } else {
                0.0
            },
        }
    }

    /// The [`Tick`] deadline by which at least one token will have
    /// accrued — what the pacer hands to the `TimerWheel` when a send
    /// finds the budget empty.
    pub fn next_token_due(&self, now_us: u64) -> Tick {
        let deficit = (1.0 - self.tokens).max(0.0);
        let wait_ms = (deficit / self.rate.max(1.0) * 1e3).ceil() as u64;
        Tick(now_us / 1_000 + wait_ms.max(1))
    }

    /// Adaptive pacing hint for the session layer: how many milliseconds
    /// one `burst_chunks`-sized burst needs at the current rate. `None`
    /// while the link runs uncontended at ≥ 90 % of the ceiling (keep
    /// the session's configured floor).
    pub fn pace_hint_ms(&self, burst_datagrams: usize) -> Option<u64> {
        if self.state == CcState::Normal && self.rate >= 0.9 * self.cfg.max_rate {
            return None;
        }
        let ms = (burst_datagrams as f64 * 1e3 / self.rate.max(1.0)).ceil() as u64;
        Some(ms.clamp(1, 500))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> NeighborCc {
        NeighborCc::new(CcConfig::default())
    }

    /// Feed `n` samples at 1 ms spacing following `owd(i)`.
    fn drive(cc: &mut NeighborCc, start_us: u64, n: usize, owd: impl Fn(usize) -> u64) -> u64 {
        let mut t = start_us;
        for i in 0..n {
            cc.on_sample(t, owd(i));
            t += 1_000;
        }
        t
    }

    #[test]
    fn rising_gradient_backs_off() {
        let mut cc = cc();
        let max = cc.rate_dps();
        // 400 µs of added delay per ms — a queue building fast.
        drive(&mut cc, 0, 8, |i| 1_000 + 400 * i as u64);
        assert_ne!(cc.state(), CcState::Normal, "ramp must leave Normal");
        assert!(
            cc.rate_dps() < max,
            "rising gradient must cut rate: {} !< {max}",
            cc.rate_dps()
        );
    }

    #[test]
    fn standing_queue_is_congested_and_keeps_shedding() {
        let mut cc = cc();
        let t = drive(&mut cc, 0, 6, |i| 1_000 + 2_000 * i as u64);
        let after_ramp = cc.rate_dps();
        // Delay parked far above base: standing queue.
        drive(&mut cc, t, 6, |_| 40_000);
        assert_eq!(cc.state(), CcState::Congested);
        assert!(
            cc.rate_dps() < after_ramp,
            "congested must keep shedding: {} !< {after_ramp}",
            cc.rate_dps()
        );
        assert!(cc.rate_dps() >= CcConfig::default().min_rate);
    }

    #[test]
    fn drain_recovers_toward_max() {
        let mut cc = cc();
        let t = drive(&mut cc, 0, 10, |i| 1_000 + 2_000 * i as u64);
        let congested_rate = cc.rate_dps();
        assert!(congested_rate < CcConfig::default().max_rate);
        // Queue drains: flat OWD back at base.
        drive(&mut cc, t, 300, |_| 1_000);
        assert_eq!(cc.state(), CcState::Normal);
        assert!(
            cc.rate_dps() > congested_rate * 1.5,
            "drain must recover: {} vs {congested_rate}",
            cc.rate_dps()
        );
        assert!(cc.rate_dps() <= CcConfig::default().max_rate);
    }

    #[test]
    fn token_budget_never_exceeds_ceiling() {
        let mut cc = cc();
        for i in 0..50u64 {
            // Huge gaps between refills try to overfill the bucket.
            cc.refill(i * 60_000_000);
            assert!(
                cc.tokens() <= CcConfig::default().bucket_cap,
                "bucket over ceiling: {}",
                cc.tokens()
            );
        }
        // Spend-and-refill cycles stay bounded too.
        for i in 0..50u64 {
            let now = 4_000_000_000 + i * 10_000;
            let _ = cc.take(now, 10);
            assert!(cc.tokens() <= CcConfig::default().bucket_cap);
        }
    }

    #[test]
    fn take_is_bounded_by_tokens_and_want() {
        let mut cc = cc();
        let granted = cc.take(0, 10_000);
        assert!(granted as f64 <= CcConfig::default().bucket_cap);
        // Bucket now nearly empty: an immediate retry grants ~nothing.
        let again = cc.take(1, 10_000);
        assert!(again <= 1, "drained bucket must not grant a burst: {again}");
    }

    /// AIMD fairness: two neighbours entering at very different rates,
    /// subjected to the same congestion cycles, converge — the classic
    /// Chiu–Jain argument (multiplicative decrease shrinks the gap,
    /// additive increase preserves it).
    #[test]
    fn two_neighbour_fairness() {
        let cfg = CcConfig::default();
        let mut a = NeighborCc::new(cfg);
        let mut b = NeighborCc::new(CcConfig {
            min_rate: 500.0,
            ..cfg
        });
        // Skew the start: a steep private ramp drives b toward its
        // floor (a constant offset would just seed b's baseline — the
        // gradient controller only reacts to *changing* delay).
        let t = drive(&mut b, 0, 12, |i| 1_000 + 4_000 * i as u64);
        assert!(b.rate_dps() < a.rate_dps() / 4.0, "precondition: skewed");
        let mut t = t;
        for _ in 0..60 {
            // Shared bottleneck: both see the same ramp, then a drain.
            t = drive(&mut a, t, 5, |i| 1_000 + 2_500 * i as u64);
            drive(&mut b, t - 5_000, 5, |i| 1_000 + 2_500 * i as u64);
            t = drive(&mut a, t, 40, |_| 1_000);
            drive(&mut b, t - 40_000, 40, |_| 1_000);
        }
        let (ra, rb) = (a.rate_dps(), b.rate_dps());
        let ratio = ra.max(rb) / ra.min(rb);
        assert!(
            ratio < 1.25,
            "rates must converge to a fair share: a={ra} b={rb} ratio={ratio}"
        );
    }

    #[test]
    fn pace_hint_tracks_rate() {
        let mut cc = cc();
        assert_eq!(cc.pace_hint_ms(32), None, "uncontended: keep the floor");
        drive(&mut cc, 0, 10, |i| 1_000 + 2_000 * i as u64);
        let hint = cc.pace_hint_ms(32).expect("congested link must hint");
        let expect = (32.0 * 1e3 / cc.rate_dps()).ceil() as u64;
        assert_eq!(hint, expect.clamp(1, 500));
    }

    #[test]
    fn next_token_due_is_in_the_future() {
        let mut cc = cc();
        let _ = cc.take(1_000_000, usize::MAX); // drain
        let due = cc.next_token_due(1_000_000);
        assert!(due.0 > 1_000, "due must lie beyond now: {due:?}");
    }
}
