//! GF kernel throughput smoke: GiB/s per kernel, per field, per
//! available backend — and a machine-readable `BENCH_gf.json` so CI
//! records the perf trajectory across PRs.
//!
//! Self-timed (no criterion) so it runs in seconds as a CI step. Each
//! kernel is timed over `reps` passes of a 4096 B working set (small
//! enough to stay in L1, so this measures the kernels, not the memory
//! bus). Output goes to stdout as the usual aligned table and to
//! `BENCH_gf.json` in the current directory (`--out PATH` overrides).
//!
//! Kernels covered, matching the gf_bench criterion groups:
//! * `axpy8` / `dot8` — GF(2⁸) slice transform and dot product;
//! * `axpy16` / `dot16` — the GF(2¹⁶) equivalents;
//! * `fused8` — the 4-output × 4-source fused recombine kernel.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use slicing_bench::{banner, RunOpts, Table};
use slicing_gf::{bulk, simd, Field, Gf65536};

/// Bytes processed per kernel pass (per input stream).
const LEN: usize = 4096;

/// Time `f` over `reps` calls and return GiB/s for `bytes_per_call`.
fn gibs(reps: usize, bytes_per_call: usize, mut f: impl FnMut()) -> f64 {
    // One warm-up pass builds any per-coefficient tables and faults
    // pages in before the timed window.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let secs = start.elapsed().as_secs_f64();
    (reps * bytes_per_call) as f64 / secs / (1u64 << 30) as f64
}

fn main() {
    let opts = RunOpts::from_args();
    let reps = opts.trials(200_000);
    let out_path = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1).cloned())
            .unwrap_or_else(|| "BENCH_gf.json".to_string())
    };
    banner(
        "GF kernel throughput (4096 B working set)",
        &format!(
            "dispatch: {} ({}); backends: {:?}",
            simd::backend(),
            simd::isa(),
            simd::available_backends()
        ),
        "SIMD ≥4× SWAR on axpy/dot in both fields on a capable host",
    );

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut dst = vec![0u8; LEN];
    let mut src = vec![0u8; LEN];
    rng.fill_bytes(&mut dst);
    rng.fill_bytes(&mut src);
    let a16: Vec<Gf65536> = (0..LEN / 2).map(|_| Gf65536::random(&mut rng)).collect();
    let b16: Vec<Gf65536> = (0..LEN / 2).map(|_| Gf65536::random(&mut rng)).collect();
    let mut acc16 = a16.clone();
    let srcs: Vec<Vec<u8>> = (0..4)
        .map(|_| {
            let mut v = vec![0u8; LEN / 4];
            rng.fill_bytes(&mut v);
            v
        })
        .collect();
    let src_refs: Vec<&[u8]> = srcs.iter().map(|s| s.as_slice()).collect();
    let coeffs: Vec<u8> = (0..16).map(|_| rng.gen_range(1..=255)).collect();
    let mut fused_outs: Vec<Vec<u8>> = vec![vec![0u8; LEN / 4]; 4];

    let mut table = Table::new(&["backend", "axpy8", "dot8", "axpy16", "dot16", "fused8"]);
    let mut entries = Vec::new();
    for (bi, backend) in simd::available_backends().into_iter().enumerate() {
        let axpy8 = gibs(reps, LEN, || {
            bulk::mul_add_slice_on(backend, &mut dst, 0xA7, &src)
        });
        let dot8 = gibs(reps, LEN, || {
            std::hint::black_box(bulk::dot_slice8_on(backend, &dst, &src));
        });
        let axpy16 = gibs(reps, LEN, || {
            bulk::mul_add_slice16_on(backend, &mut acc16, Gf65536::new(0xA7C3), &b16)
        });
        let dot16 = gibs(reps, LEN, || {
            std::hint::black_box(bulk::dot_slice16_on(backend, &a16, &b16));
        });
        let fused8 = gibs(reps / 4, 4 * LEN, || {
            let mut out_refs: Vec<&mut [u8]> =
                fused_outs.iter_mut().map(|o| o.as_mut_slice()).collect();
            bulk::mul_add_fused_on(backend, &mut out_refs, &coeffs, &src_refs);
        });
        table.row(&[bi as f64, axpy8, dot8, axpy16, dot16, fused8]);
        entries.push(format!(
            "    {{\"backend\": \"{backend}\", \
             \"gf8\": {{\"axpy_gibs\": {axpy8:.3}, \"dot_gibs\": {dot8:.3}, \
             \"fused_axpy_gibs\": {fused8:.3}}}, \
             \"gf16\": {{\"axpy_gibs\": {axpy16:.3}, \"dot_gibs\": {dot16:.3}}}}}"
        ));
    }
    println!("(backend column: index into {:?})", simd::available_backends());
    table.print();

    let json = format!(
        "{{\n  \"bench\": \"gf_kernels\",\n  \"working_set_bytes\": {LEN},\n  \
         \"dispatch\": \"{}\",\n  \"isa\": \"{}\",\n  \"kernels\": [\n{}\n  ]\n}}\n",
        simd::backend(),
        simd::isa(),
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write BENCH_gf.json");
    println!("wrote {out_path}");
}
