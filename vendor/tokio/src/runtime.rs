//! Runtime entry points.
//!
//! The vendored runtime is a single global executor, so a [`Runtime`] is
//! just a handle to [`block_on`]; [`Builder`] accepts tokio's
//! configuration calls and ignores them.

use std::future::Future;

/// Drive a future to completion on the calling thread, with spawned
/// tasks running on the global worker pool.
pub fn block_on<F: Future>(fut: F) -> F::Output {
    crate::executor::block_on(fut)
}

/// Handle to the global runtime.
#[derive(Debug, Default)]
pub struct Runtime;

impl Runtime {
    /// Create a runtime handle.
    pub fn new() -> std::io::Result<Runtime> {
        Ok(Runtime)
    }

    /// Drive a future to completion.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        block_on(fut)
    }
}

/// Accepts tokio's builder calls; all configuration is ignored because
/// the global pool is shared.
#[derive(Debug, Default)]
pub struct Builder;

impl Builder {
    /// Start configuring a multi-threaded runtime.
    pub fn new_multi_thread() -> Builder {
        Builder
    }

    /// Start configuring a current-thread runtime.
    pub fn new_current_thread() -> Builder {
        Builder
    }

    /// Ignored (the global pool size is fixed).
    pub fn worker_threads(&mut self, _n: usize) -> &mut Builder {
        self
    }

    /// Ignored (timers and IO are always enabled).
    pub fn enable_all(&mut self) -> &mut Builder {
        self
    }

    /// Ignored (timers are always enabled).
    pub fn enable_time(&mut self) -> &mut Builder {
        self
    }

    /// Build the runtime handle.
    pub fn build(&mut self) -> std::io::Result<Runtime> {
        Ok(Runtime)
    }
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    #[test]
    fn block_on_plain_value() {
        assert_eq!(super::block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn sleep_actually_sleeps() {
        let start = Instant::now();
        super::block_on(crate::time::sleep(Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn spawn_and_join() {
        let out = super::block_on(async {
            let h = crate::spawn(async {
                crate::time::sleep(Duration::from_millis(5)).await;
                7u32
            });
            h.await.unwrap()
        });
        assert_eq!(out, 7);
    }

    #[test]
    fn mpsc_bounded_round_trip() {
        super::block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::channel::<u32>(2);
            let h = crate::spawn(async move {
                for i in 0..100 {
                    tx.send(i).await.unwrap();
                }
            });
            for i in 0..100 {
                assert_eq!(rx.recv().await, Some(i));
            }
            assert_eq!(rx.recv().await, None);
            h.await.unwrap();
        });
    }

    #[test]
    fn select_prefers_ready_branch() {
        super::block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel::<u8>();
            tx.send(9).unwrap();
            let deadline = crate::time::sleep(Duration::from_secs(5));
            crate::pin!(deadline);
            crate::select! {
                v = rx.recv() => assert_eq!(v, Some(9)),
                _ = &mut deadline => panic!("deadline fired first"),
            }
        });
    }

    #[test]
    fn interval_ticks() {
        super::block_on(async {
            let start = Instant::now();
            let mut ticker = crate::time::interval(Duration::from_millis(10));
            ticker.tick().await; // immediate
            ticker.tick().await;
            ticker.tick().await;
            assert!(start.elapsed() >= Duration::from_millis(18));
        });
    }

    #[test]
    fn tcp_round_trip() {
        use crate::io::{AsyncReadExt, AsyncWriteExt};
        super::block_on(async {
            let listener = crate::net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = crate::spawn(async move {
                let (mut s, _) = listener.accept().await.unwrap();
                let mut buf = [0u8; 4];
                s.read_exact(&mut buf).await.unwrap();
                s.write_all(&buf).await.unwrap();
            });
            let mut c = crate::net::TcpStream::connect(addr).await.unwrap();
            c.write_all(b"ping").await.unwrap();
            let mut buf = [0u8; 4];
            c.read_exact(&mut buf).await.unwrap();
            assert_eq!(&buf, b"ping");
            server.await.unwrap();
        });
    }
}
