//! Real TCP transport on loopback: length-prefixed frames over cached
//! connections, with a hello preamble carrying the sender's overlay
//! address.

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use slicing_graph::OverlayAddr;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::mpsc;

use crate::{NodePort, PortSender, PortSenderInner};

/// Maximum accepted frame size (sanity bound).
const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Sender half for the TCP transport.
#[derive(Clone)]
pub struct TcpSender {
    conns: Arc<Mutex<HashMap<OverlayAddr, mpsc::Sender<Bytes>>>>,
}

/// A TCP-backed overlay network on loopback.
pub struct TcpNet;

impl TcpNet {
    /// Bind a listener on an ephemeral loopback port and return the
    /// node's overlay address (which encodes `127.0.0.1:port`) plus its
    /// port.
    ///
    /// The accept loop runs until the returned `NodePort` is dropped.
    pub async fn attach() -> std::io::Result<NodePort> {
        TcpNet::attach_at(0).await
    }

    /// Bind a listener on a *fixed* loopback port (`0` = ephemeral).
    ///
    /// Daemon processes with config-declared listen addresses use this:
    /// peers must be able to compute the node's overlay address before
    /// the process exists, and a restarted process must rebind the same
    /// address (see [`crate::udp::UdpNet::attach_at`]).
    pub async fn attach_at(port: u16) -> std::io::Result<NodePort> {
        let listener = TcpListener::bind(format!("127.0.0.1:{port}")).await?;
        let port = listener.local_addr()?.port();
        let addr = OverlayAddr::from_ipv4([127, 0, 0, 1], port);
        let (tx, rx) = mpsc::channel::<(OverlayAddr, Bytes)>(1024);

        // Accept loop: runs until the port (the inbox receiver) is
        // dropped. Without the `closed()` arm the listener task — and
        // the bound port — would leak forever once the node went away,
        // since `accept()` alone never resolves on an idle listener.
        tokio::spawn(async move {
            loop {
                let accept = Box::pin(listener.accept());
                let stream = tokio::select! {
                    accepted = accept => match accepted {
                        Ok((stream, _)) => stream,
                        Err(_) => break,
                    },
                    _ = tx.closed() => break,
                };
                let tx = tx.clone();
                tokio::spawn(async move {
                    let _ = read_peer(stream, tx).await;
                });
            }
        });

        Ok(NodePort {
            addr,
            rx,
            tx: PortSender {
                addr,
                inner: PortSenderInner::Tcp(TcpSender {
                    conns: Arc::new(Mutex::new(HashMap::new())),
                }),
            },
        })
    }
}

async fn read_peer(
    mut stream: TcpStream,
    tx: mpsc::Sender<(OverlayAddr, Bytes)>,
) -> std::io::Result<()> {
    // Hello: 8-byte sender overlay address.
    let mut hello = [0u8; 8];
    stream.read_exact(&mut hello).await?;
    let from = OverlayAddr::from_bytes(hello);
    loop {
        let mut len_buf = [0u8; 4];
        if stream.read_exact(&mut len_buf).await.is_err() {
            return Ok(()); // peer closed
        }
        let len = u32::from_le_bytes(len_buf);
        if len > MAX_FRAME {
            return Ok(());
        }
        let mut frame = vec![0u8; len as usize];
        stream.read_exact(&mut frame).await?;
        if tx.send((from, Bytes::from(frame))).await.is_err() {
            return Ok(()); // node shut down
        }
    }
}

impl TcpSender {
    /// Send one frame, establishing/caching the connection as needed.
    pub(crate) async fn send(&self, from: OverlayAddr, to: OverlayAddr, bytes: Bytes) {
        let Some(writer) = self.writer_for(from, to).await else {
            return; // dead peer: datagram semantics, drop
        };
        if writer.send(bytes).await.is_err() {
            self.forget_if_current(to, &writer);
        }
    }

    /// Send a batch of frames to one peer: the connection cache is
    /// consulted once for the whole batch. Drains `frames` (the caller
    /// keeps the Vec's capacity); frames after a writer failure are
    /// dropped, like any datagram to a dead peer.
    pub(crate) async fn send_many(
        &self,
        from: OverlayAddr,
        to: OverlayAddr,
        frames: &mut Vec<Bytes>,
    ) {
        let Some(writer) = self.writer_for(from, to).await else {
            frames.clear();
            return;
        };
        for frame in frames.drain(..) {
            if writer.send(frame).await.is_err() {
                self.forget_if_current(to, &writer);
                break;
            }
        }
        frames.clear();
    }

    /// The cached writer for `to`, connecting if absent.
    ///
    /// Concurrent sends to the same cold peer may both connect; the
    /// cache is re-checked under the lock before insert, the loser's
    /// socket is dropped unused and both sends share the winner's
    /// writer — exactly one connection is ever cached per peer.
    async fn writer_for(
        &self,
        from: OverlayAddr,
        to: OverlayAddr,
    ) -> Option<mpsc::Sender<Bytes>> {
        if let Some(w) = self.conns.lock().get(&to) {
            return Some(w.clone());
        }
        let (ip, port) = to.to_ipv4();
        let target = std::net::SocketAddr::from((ip, port));
        let mut stream = TcpStream::connect(target).await.ok()?;
        let _ = stream.set_nodelay(true);
        {
            // Re-check: a racing send may have connected and cached a
            // writer while we were connecting. Keep theirs, drop ours —
            // inserting blindly would orphan (and leak) the cached
            // writer task and its live socket.
            let mut conns = self.conns.lock();
            if let Some(w) = conns.get(&to) {
                return Some(w.clone());
            }
            let (wtx, mut wrx) = mpsc::channel::<Bytes>(256);
            conns.insert(to, wtx.clone());
            drop(conns);
            tokio::spawn(async move {
                // Hello preamble.
                if stream.write_all(&from.to_bytes()).await.is_err() {
                    return;
                }
                while let Some(frame) = wrx.recv().await {
                    let len = (frame.len() as u32).to_le_bytes();
                    if stream.write_all(&len).await.is_err()
                        || stream.write_all(&frame).await.is_err()
                    {
                        return;
                    }
                }
            });
            Some(wtx)
        }
    }

    /// Forget a dead writer — but only if the cache still holds *that*
    /// writer: a racing send may already have replaced it with a fresh
    /// healthy connection, which an unconditional remove would evict.
    fn forget_if_current(&self, to: OverlayAddr, failed: &mpsc::Sender<Bytes>) {
        let mut conns = self.conns.lock();
        if conns.get(&to).is_some_and(|cur| cur.same_channel(failed)) {
            conns.remove(&to);
        }
    }

    /// Number of cached peer connections (tests).
    #[cfg(test)]
    fn cached_connections(&self) -> usize {
        self.conns.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[tokio::test]
    async fn round_trip_over_loopback() {
        let a = TcpNet::attach().await.unwrap();
        let mut b = TcpNet::attach().await.unwrap();
        a.tx.send(b.addr, bytes::Bytes::from(&b"over tcp"[..])).await;
        let (from, bytes) = b.rx.recv().await.unwrap();
        assert_eq!(from, a.addr);
        assert_eq!(bytes, b"over tcp");
    }

    #[tokio::test]
    async fn many_frames_in_order_per_connection() {
        let a = TcpNet::attach().await.unwrap();
        let mut b = TcpNet::attach().await.unwrap();
        for i in 0..50u32 {
            a.tx.send(b.addr, bytes::Bytes::from(i.to_le_bytes().to_vec())).await;
        }
        for i in 0..50u32 {
            let (_, bytes) = b.rx.recv().await.unwrap();
            assert_eq!(bytes, i.to_le_bytes());
        }
    }

    #[tokio::test]
    async fn bidirectional() {
        let mut a = TcpNet::attach().await.unwrap();
        let mut b = TcpNet::attach().await.unwrap();
        a.tx.send(b.addr, bytes::Bytes::from(&b"ping"[..])).await;
        let (_, ping) = b.rx.recv().await.unwrap();
        assert_eq!(ping, b"ping");
        b.tx.send(a.addr, bytes::Bytes::from(&b"pong"[..])).await;
        let (_, pong) = a.rx.recv().await.unwrap();
        assert_eq!(pong, b"pong");
    }

    #[tokio::test]
    async fn send_to_dead_peer_does_not_block() {
        let a = TcpNet::attach().await.unwrap();
        // Unbound address: connect fails, send becomes a no-op.
        let ghost = OverlayAddr::from_ipv4([127, 0, 0, 1], 1);
        a.tx.send(ghost, bytes::Bytes::from(&b"x"[..])).await;
    }

    #[tokio::test]
    async fn batched_send_many_delivers_in_order() {
        let a = TcpNet::attach().await.unwrap();
        let mut b = TcpNet::attach().await.unwrap();
        let mut frames: Vec<Bytes> = (0..20u32)
            .map(|i| Bytes::from(i.to_le_bytes().to_vec()))
            .collect();
        a.tx.send_many(b.addr, &mut frames).await;
        assert!(frames.is_empty(), "send_many drains the batch");
        for i in 0..20u32 {
            let (from, bytes) = b.rx.recv().await.unwrap();
            assert_eq!(from, a.addr);
            assert_eq!(bytes, i.to_le_bytes());
        }
    }

    /// Regression test for the check-then-insert race in
    /// `TcpSender::send`: many tasks racing to a cold peer used to
    /// connect concurrently and overwrite each other's cached writer,
    /// leaking sockets and stranding frames in orphaned writer tasks.
    /// Exactly one connection may end up cached, and every frame must
    /// arrive.
    #[tokio::test(flavor = "multi_thread", worker_threads = 4)]
    async fn concurrent_cold_sends_cache_one_connection_and_lose_nothing() {
        const TASKS: u32 = 24;
        const FRAMES_PER_TASK: u32 = 8;
        let a = TcpNet::attach().await.unwrap();
        let mut b = TcpNet::attach().await.unwrap();
        let b_addr = b.addr;

        let mut joins = Vec::new();
        for t in 0..TASKS {
            let tx = a.tx.clone();
            joins.push(tokio::spawn(async move {
                for f in 0..FRAMES_PER_TASK {
                    let tag = (t * FRAMES_PER_TASK + f).to_le_bytes().to_vec();
                    tx.send(b_addr, Bytes::from(tag)).await;
                }
            }));
        }
        for j in joins {
            j.await.unwrap();
        }

        let mut got = Vec::new();
        for _ in 0..TASKS * FRAMES_PER_TASK {
            let (from, bytes) = b.rx.recv().await.unwrap();
            assert_eq!(from, a.addr);
            got.push(u32::from_le_bytes(bytes[..4].try_into().unwrap()));
        }
        got.sort_unstable();
        let want: Vec<u32> = (0..TASKS * FRAMES_PER_TASK).collect();
        assert_eq!(got, want, "every frame must arrive exactly once");

        let PortSenderInner::Tcp(sender) = &a.tx.inner else {
            unreachable!("TCP transport")
        };
        assert_eq!(
            sender.cached_connections(),
            1,
            "racing cold sends must collapse onto one cached connection"
        );
    }

    /// Regression test for the leaked accept loop: dropping a `NodePort`
    /// must terminate its listener task and release the port.
    #[tokio::test]
    async fn dropped_port_releases_listener() {
        let node = TcpNet::attach().await.unwrap();
        let (ip, port) = node.addr.to_ipv4();
        drop(node);
        // The accept loop exits on `tx.closed()`; once it has dropped
        // the listener the port is rebindable. Bounded retry, no blind
        // sleep.
        let target = std::net::SocketAddr::from((ip, port));
        let rebound = crate::testutil::wait_until(
            || std::net::TcpListener::bind(target).is_ok(),
            |ok| *ok,
        )
        .await;
        assert!(rebound, "listener port must be released after drop");
    }
}
