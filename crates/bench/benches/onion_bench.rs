//! Criterion benches for the onion baseline: circuit construction
//! (layered RSA) and per-hop data processing — the costs Figs. 14–15
//! trace back to.

// criterion_group! expands to an undocumented fn.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use slicing_graph::OverlayAddr;
use slicing_onion::{Directory, OnionSource};

fn onion(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(19);
    let mut group = c.benchmark_group("onion");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for hops in [3usize, 5] {
        let mut dir = Directory::new();
        let path: Vec<OverlayAddr> = (0..hops as u64).map(|i| OverlayAddr(100 + i)).collect();
        for &a in &path {
            dir.register(a, 512, &mut rng);
        }
        group.bench_with_input(
            BenchmarkId::new("build_circuit", hops),
            &hops,
            |b, _| {
                b.iter(|| {
                    OnionSource::build_circuit(OverlayAddr(1), &path, &dir, &mut rng).unwrap()
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("send_data_1400B", hops), &hops, |b, _| {
            let (mut handle, _) =
                OnionSource::build_circuit(OverlayAddr(1), &path, &dir, &mut rng).unwrap();
            let payload = vec![0u8; 1400];
            b.iter(|| handle.send_data(&payload, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, onion);
criterion_main!(benches);
