//! A ChaCha20-based deterministic random generator implementing the
//! `rand` traits, used wherever the protocol needs keyed, reproducible
//! randomness (per-hop transforms, padding, flow-id derivation).

use rand::{CryptoRng, Error, RngCore, SeedableRng};

use crate::chacha20;

/// Deterministic CSPRNG: the ChaCha20 keystream of a 32-byte seed.
pub struct ChaChaRng {
    key: [u8; 32],
    counter: u32,
    buf: [u8; 64],
    used: usize,
}

impl ChaChaRng {
    /// Construct from a 32-byte seed.
    pub fn new(seed: [u8; 32]) -> Self {
        ChaChaRng {
            key: seed,
            counter: 0,
            buf: [0; 64],
            used: 64,
        }
    }

    fn refill(&mut self) {
        self.buf = chacha20::block(&self.key, &[0u8; 12], self.counter);
        self.counter = self.counter.wrapping_add(1);
        self.used = 0;
    }
}

impl RngCore for ChaChaRng {
    fn next_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.fill_bytes(&mut b);
        u32::from_le_bytes(b)
    }

    fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_le_bytes(b)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for byte in dest.iter_mut() {
            if self.used == 64 {
                self.refill();
            }
            *byte = self.buf[self.used];
            self.used += 1;
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl CryptoRng for ChaChaRng {}

impl SeedableRng for ChaChaRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        ChaChaRng::new(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = ChaChaRng::new([5u8; 32]);
        let mut b = ChaChaRng::new([5u8; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaChaRng::new([5u8; 32]);
        let mut b = ChaChaRng::new([6u8; 32]);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn usable_with_rand_apis() {
        use rand::Rng;
        let mut rng = ChaChaRng::from_seed([1u8; 32]);
        let v: u8 = rng.gen_range(0..10);
        assert!(v < 10);
        let coin: bool = rng.gen();
        let _ = coin;
    }

    #[test]
    fn fill_bytes_spans_block_boundaries() {
        let mut rng = ChaChaRng::new([9u8; 32]);
        let mut big = vec![0u8; 200];
        rng.fill_bytes(&mut big);
        // Compare against a reference built from raw blocks.
        let mut reference = Vec::new();
        for ctr in 0..4u32 {
            reference.extend_from_slice(&chacha20::block(&[9u8; 32], &[0u8; 12], ctr));
        }
        assert_eq!(&big[..], &reference[..200]);
    }
}
