//! Timers: a dedicated thread holding a deadline heap wakes sleeping
//! tasks; everything here is `Unpin` so [`crate::select!`] can poll it
//! without pin projection.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::sync::{Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Waker};
use std::time::Duration;

pub use std::time::Instant;

struct TimerEntry {
    deadline: Instant,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}

impl Eq for TimerEntry {}

impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

struct TimerState {
    heap: BinaryHeap<Reverse<TimerEntry>>,
    seq: u64,
}

struct Timer {
    state: Mutex<TimerState>,
    changed: Condvar,
}

impl Timer {
    fn register(&self, deadline: Instant, waker: Waker) {
        let mut s = self.state.lock().unwrap();
        let seq = s.seq;
        s.seq += 1;
        s.heap.push(Reverse(TimerEntry {
            deadline,
            seq,
            waker,
        }));
        self.changed.notify_one();
    }

    fn run(&self) {
        let mut s = self.state.lock().unwrap();
        loop {
            let now = Instant::now();
            while matches!(s.heap.peek(), Some(Reverse(e)) if e.deadline <= now) {
                let Reverse(entry) = s.heap.pop().expect("peeked entry");
                entry.waker.wake();
            }
            match s.heap.peek() {
                Some(Reverse(next)) => {
                    let wait = next.deadline.saturating_duration_since(now);
                    let (guard, _) = self.changed.wait_timeout(s, wait).unwrap();
                    s = guard;
                }
                None => s = self.changed.wait(s).unwrap(),
            }
        }
    }
}

fn timer() -> &'static Timer {
    static TIMER: OnceLock<Timer> = OnceLock::new();
    static STARTED: OnceLock<()> = OnceLock::new();
    let t = TIMER.get_or_init(|| Timer {
        state: Mutex::new(TimerState {
            heap: BinaryHeap::new(),
            seq: 0,
        }),
        changed: Condvar::new(),
    });
    STARTED.get_or_init(|| {
        std::thread::Builder::new()
            .name("tokio-timer".into())
            .spawn(|| timer().run())
            .expect("spawn timer thread");
    });
    t
}

/// Future returned by [`sleep`] and [`sleep_until`].
#[derive(Debug)]
pub struct Sleep {
    deadline: Instant,
}

impl Sleep {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> Instant {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if Instant::now() >= self.deadline {
            Poll::Ready(())
        } else {
            timer().register(self.deadline, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Sleep for `duration`.
pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: Instant::now() + duration,
    }
}

/// Sleep until `deadline`.
pub fn sleep_until(deadline: Instant) -> Sleep {
    Sleep { deadline }
}

/// What an [`Interval`] does about missed ticks. The vendored runtime
/// always behaves like [`MissedTickBehavior::Delay`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissedTickBehavior {
    /// Tick again one full period after the late tick fired.
    Delay,
    /// Fire missed ticks back to back.
    Burst,
    /// Skip missed ticks.
    Skip,
}

/// A stream of ticks spaced `period` apart; the first completes at once.
#[derive(Debug)]
pub struct Interval {
    period: Duration,
    next: Instant,
}

impl Interval {
    /// Complete at the next tick.
    pub fn tick(&mut self) -> Tick<'_> {
        Tick { interval: self }
    }

    /// Accepted for API compatibility; the vendored interval always
    /// delays after a missed tick.
    pub fn set_missed_tick_behavior(&mut self, _behavior: MissedTickBehavior) {}

    /// The tick period.
    pub fn period(&self) -> Duration {
        self.period
    }
}

/// Future returned by [`Interval::tick`].
#[derive(Debug)]
pub struct Tick<'a> {
    interval: &'a mut Interval,
}

impl Future for Tick<'_> {
    type Output = Instant;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Instant> {
        let now = Instant::now();
        if now >= self.interval.next {
            // Delay semantics: schedule the next tick relative to now.
            self.interval.next = now + self.interval.period;
            Poll::Ready(now)
        } else {
            timer().register(self.interval.next, cx.waker().clone());
            Poll::Pending
        }
    }
}

/// Create an [`Interval`] whose first tick completes immediately.
pub fn interval(period: Duration) -> Interval {
    assert!(period > Duration::ZERO, "interval period must be nonzero");
    Interval {
        period,
        next: Instant::now(),
    }
}

/// Error returned by [`timeout`] when the deadline elapses first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline has elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Await `fut`, abandoning it if it takes longer than `duration`.
pub async fn timeout<F: Future>(duration: Duration, fut: F) -> Result<F::Output, Elapsed> {
    let sleep = sleep(duration);
    let mut sleep = std::pin::pin!(sleep);
    let mut fut = std::pin::pin!(fut);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if let Poll::Ready(()) = sleep.as_mut().poll(cx) {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    })
    .await
}
