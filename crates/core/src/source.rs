//! The source session: the sans-IO equivalent of the paper's "source
//! utility" (§7.1).
//!
//! A session owns a forwarding graph. Creating it yields the setup
//! packets to transmit from the pseudo-sources; afterwards the source can
//! slice-and-send encrypted data messages (§4.3.7), and decode
//! reverse-path data arriving at the pseudo-sources.

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use slicing_codec::{coder, recombine, InfoSlice};
use slicing_crypto::aead;
use slicing_graph::packets::SendInstr;
use slicing_graph::{build, BuiltGraph, GraphError, GraphParams, OverlayAddr};
use slicing_wire::{crc, Packet, PacketBuilder, PacketHeader, PacketKind};

use crate::time::Tick;

/// Source-side tunables.
#[derive(Clone, Copy, Debug)]
pub struct SourceConfig {
    /// Target wire size for data packets; the message chunk size is
    /// derived from it (paper uses 1500-byte packets, §7.2).
    pub data_packet_budget: usize,
}

impl Default for SourceConfig {
    fn default() -> Self {
        SourceConfig {
            data_packet_budget: 1500,
        }
    }
}

/// Per-seq reverse gathering state: (pseudo-source, sender) pairs heard
/// and the CRC-valid slices collected so far.
type ReverseGather = (HashSet<(OverlayAddr, OverlayAddr)>, Vec<InfoSlice>);

/// An anonymous connection from the source's point of view.
pub struct SourceSession {
    graph: BuiltGraph,
    config: SourceConfig,
    next_seq: u32,
    /// Reverse-path gathering: seq → ((pseudo-source, sender) pairs
    /// heard, slices). Keyed on the pair because one relay legitimately
    /// delivers distinct slices to several pseudo-sources (e.g. a
    /// destination sitting in stage 1).
    reverse: HashMap<u32, ReverseGather>,
    /// Reverse messages already decoded.
    reverse_done: HashSet<u32>,
    rng: StdRng,
}

impl SourceSession {
    /// Build a forwarding graph and the setup packets that establish it.
    ///
    /// Arguments mirror [`slicing_graph::build::build`]; see there for the
    /// requirements on `pseudo_sources` and `candidates`.
    pub fn establish(
        params: GraphParams,
        pseudo_sources: &[OverlayAddr],
        candidates: &[OverlayAddr],
        dest: OverlayAddr,
        seed: u64,
    ) -> Result<(SourceSession, Vec<SendInstr>), GraphError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let graph = build::build(params, pseudo_sources, candidates, dest, &mut rng)?;
        let setup = graph.setup_packets(&mut rng);
        Ok((
            SourceSession {
                graph,
                config: SourceConfig::default(),
                next_seq: 0,
                reverse: HashMap::new(),
                reverse_done: HashSet::new(),
                rng,
            },
            setup,
        ))
    }

    /// Override the configuration.
    pub fn set_config(&mut self, config: SourceConfig) {
        self.config = config;
    }

    /// The underlying graph (stages, destination position, keys).
    pub fn graph(&self) -> &BuiltGraph {
        &self.graph
    }

    /// Largest plaintext chunk that fits the data-packet budget.
    ///
    /// A data slot is `d` coefficients + block + CRC; the sealed message
    /// (nonce + ciphertext + tag = plaintext + 44 bytes) is split into `d`
    /// blocks.
    pub fn max_chunk_len(&self) -> usize {
        let d = self.graph.params.split;
        let header = slicing_wire::HEADER_LEN;
        let block_budget = self
            .config
            .data_packet_budget
            .saturating_sub(header + d + 4);
        // block_len = ceil((sealed + 4) / d)  =>  sealed ≈ block_budget·d − 4
        (block_budget * d).saturating_sub(4 + 44).max(1)
    }

    /// Slice, encrypt and address one data message; returns its sequence
    /// number and the packets to transmit (d′² of them, one per
    /// pseudo-source → stage-1 relay edge, §7.2).
    ///
    /// # Panics
    /// Panics if `plaintext` exceeds [`Self::max_chunk_len`].
    pub fn send_message(&mut self, plaintext: &[u8]) -> (u32, Vec<SendInstr>) {
        assert!(
            plaintext.len() <= self.max_chunk_len(),
            "message exceeds per-packet budget; chunk it"
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let params = self.graph.params;
        let (d, dp) = (params.split, params.paths);
        let sealed = aead::seal(&self.graph.dest_key, plaintext, &mut self.rng);
        let coded = coder::encode(&sealed, d, dp, &mut self.rng);
        let slot_len = d + coded.block_len + 4;
        let recode = matches!(params.data_mode, slicing_graph::DataMode::Recode);
        let mut sends = Vec::with_capacity(dp * dp);
        for i in 0..dp {
            for v in 0..dp {
                let mut builder = PacketBuilder::new(PacketHeader {
                    kind: PacketKind::Data,
                    flow_id: self.graph.flow_ids[1][v],
                    seq,
                    d: d as u8,
                    slot_count: 1,
                    slot_len: slot_len as u16,
                });
                // Write the slice straight into the packet's slot.
                let slot = builder.slot();
                let body = d + coded.block_len;
                let fresh;
                let slice = if recode {
                    fresh = recombine::recombine(&coded.slices, &mut self.rng);
                    &fresh
                } else {
                    // Static assignment: slice (i + v + h₀) mod d′ crosses
                    // edge (pseudo-source i → stage-1 relay v).
                    &coded.slices[(i + v + self.graph.data_offsets[0]) % dp]
                };
                slot[..d].copy_from_slice(&slice.coeffs);
                slot[d..body].copy_from_slice(&slice.payload);
                crc::write_crc(slot);
                sends.push(SendInstr {
                    from: self.graph.stages[0][i],
                    to: self.graph.stages[1][v],
                    packet: builder.build(),
                });
            }
        }
        (seq, sends)
    }

    /// Feed a packet received at one of the pseudo-sources; returns a
    /// decoded reverse-path message when one completes (§4.3.7).
    pub fn handle_packet(
        &mut self,
        _now: Tick,
        pseudo_source: OverlayAddr,
        from: OverlayAddr,
        packet: &Packet,
    ) -> Option<(u32, Vec<u8>)> {
        if packet.header.kind != PacketKind::Data {
            return None;
        }
        // Reverse packets arrive on the pseudo-sources' reverse flow ids
        // (borrowed in place — this runs once per received packet).
        if !self.graph.reverse_flow_ids[0].contains(&packet.header.flow_id) {
            return None;
        }
        let seq = packet.header.seq;
        if self.reverse_done.contains(&seq) {
            return None;
        }
        let d = self.graph.params.split;
        let entry = self
            .reverse
            .entry(seq)
            .or_insert_with(|| (HashSet::new(), Vec::new()));
        if !entry.0.insert((pseudo_source, from)) {
            return None;
        }
        for slot in packet.slots() {
            if slot.len() < d + 4 {
                continue;
            }
            if let Some(payload) = crc::check_crc(slot) {
                if let Some(slice) = InfoSlice::from_bytes(d, slot.len() - d - 4, payload) {
                    entry.1.push(slice);
                }
            }
        }
        if entry.1.len() >= d {
            if let Ok(sealed) = coder::decode(&entry.1, d) {
                if let Ok(plaintext) = aead::open(&self.graph.dest_key, &sealed) {
                    self.reverse_done.insert(seq);
                    self.reverse.remove(&seq);
                    return Some((seq, plaintext));
                }
            }
        }
        None
    }

    /// All addresses this session's pseudo-sources use.
    pub fn pseudo_sources(&self) -> &[OverlayAddr] {
        &self.graph.stages[0]
    }

    /// Random convenience access for drivers that need additional
    /// source-side randomness (e.g. jitter).
    pub fn rng(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slicing_graph::DestPlacement;

    fn addrs(base: u64, n: usize) -> Vec<OverlayAddr> {
        (0..n as u64).map(|i| OverlayAddr(base + i)).collect()
    }

    fn session(l: usize, d: usize, dp: usize) -> (SourceSession, Vec<SendInstr>) {
        let params = GraphParams::new(l, d)
            .with_paths(dp)
            .with_dest_placement(DestPlacement::LastStage);
        SourceSession::establish(
            params,
            &addrs(10_000, dp),
            &addrs(20_000, l * dp + 8),
            OverlayAddr(1),
            7,
        )
        .unwrap()
    }

    #[test]
    fn establish_emits_setup_packets() {
        let (s, setup) = session(4, 2, 3);
        assert_eq!(setup.len(), 9); // d'^2
        assert_eq!(s.graph().params.length, 4);
    }

    #[test]
    fn send_message_emits_dp_squared_packets() {
        let (mut s, _) = session(4, 2, 3);
        let (seq, sends) = s.send_message(b"hello");
        assert_eq!(seq, 0);
        assert_eq!(sends.len(), 9);
        let (seq2, _) = s.send_message(b"world");
        assert_eq!(seq2, 1);
    }

    #[test]
    fn data_packets_fit_budget() {
        let (mut s, _) = session(5, 3, 3);
        let chunk = vec![0xAB; s.max_chunk_len()];
        let (_, sends) = s.send_message(&chunk);
        for send in sends {
            assert!(
                send.packet.encode().len() <= 1500,
                "packet {} exceeds budget",
                send.packet.encode().len()
            );
        }
    }

    #[test]
    #[should_panic(expected = "exceeds per-packet budget")]
    fn oversize_message_panics() {
        let (mut s, _) = session(5, 2, 2);
        let too_big = vec![0u8; s.max_chunk_len() + 1];
        let _ = s.send_message(&too_big);
    }

    #[test]
    fn map_mode_sends_each_slice_once_per_stage1_node() {
        let params = GraphParams::new(3, 2)
            .with_paths(3)
            .with_data_mode(slicing_graph::DataMode::Map);
        let (mut s, _) = SourceSession::establish(
            params,
            &addrs(10_000, 3),
            &addrs(20_000, 30),
            OverlayAddr(1),
            9,
        )
        .unwrap();
        let (_, sends) = s.send_message(b"map mode");
        // Every stage-1 relay receives 3 distinct coefficient rows.
        for v in 0..3usize {
            let to = s.graph().stages[1][v];
            let rows: HashSet<Vec<u8>> = sends
                .iter()
                .filter(|x| x.to == to)
                .map(|x| x.packet.slot(0)[..2].to_vec())
                .collect();
            assert_eq!(rows.len(), 3, "stage-1 node {v} got duplicate slices");
        }
    }
}
