//! Fig. 16: analytic probability of transfer success vs added redundancy
//! (Eqs. 6–7; L = 5, d = 2; p ∈ {0.1, 0.3}), with a Monte-Carlo
//! cross-check through the real protocol engine.

use slicing_bench::{banner, RunOpts, Table};
use slicing_sim::churn::ChurnModel;
use slicing_sim::transfer::ChurnExperiment;
use slicing_sim::{onion_ec_success, slicing_success};

fn main() {
    let opts = RunOpts::from_args();
    let mc_trials = opts.trials(100);
    banner(
        "Figure 16 — P(transfer success) vs added redundancy (analytic)",
        "L=5, d=2, node failure p in {0.1, 0.3}; Eq.6 (onion+EC) vs Eq.7 (slicing)",
        "slicing dominates onion-with-erasure-codes at every redundancy; \
         gap widens at p=0.3",
    );
    let mut table = Table::new(&[
        "redundancy",
        "slicing_p0.1",
        "onionEC_p0.1",
        "slicing_p0.3",
        "onionEC_p0.3",
        "slicing_MC_p0.1",
    ]);
    for dp in 2..=12u64 {
        let r = (dp - 2) as f64 / 2.0;
        // Monte-Carlo through the real engine at p=0.1 (cross-check).
        let mc = if dp <= 6 {
            let e = ChurnExperiment {
                length: 5,
                split: 2,
                paths: dp as usize,
                churn: ChurnModel::with_failure_probability(0.1, 30.0),
                messages: 4,
            };
            let mut ok = 0usize;
            for t in 0..mc_trials {
                ok += usize::from(e.slicing_session(opts.seed + t as u64));
            }
            ok as f64 / mc_trials as f64
        } else {
            f64::NAN
        };
        table.row(&[
            r,
            slicing_success(5, 2, dp, 0.1),
            onion_ec_success(5, 2, dp, 0.1),
            slicing_success(5, 2, dp, 0.3),
            onion_ec_success(5, 2, dp, 0.3),
            mc,
        ]);
    }
    table.print();
}
