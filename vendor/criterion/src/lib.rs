//! Vendored, dependency-free subset of the `criterion` API.
//!
//! Provides the benchmarking surface this workspace's `benches/` use —
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`criterion_group!`] /
//! [`criterion_main!`] — with a simple warm-up + timed-batch measurement
//! loop instead of upstream's statistical machinery. Results print one
//! line per benchmark: mean ns/iter and derived throughput.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared work per iteration, used to report throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; call [`iter`](Bencher::iter) with the
/// routine to measure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    /// Measured mean nanoseconds per iteration.
    result_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run for `warm_up`, estimating iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Batch size targeting ~1ms per batch so clock reads don't
        // dominate nanosecond-scale routines.
        let batch = ((1e-3 / per_iter.max(1e-9)) as u64).clamp(1, 1 << 20);

        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        let elapsed = start.elapsed();
        self.result_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn report(group: Option<&str>, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let per_iter_secs = b.result_ns / 1e9;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(n) => {
            let mibps = n as f64 / per_iter_secs / (1024.0 * 1024.0);
            format!(" thrpt: {mibps:>10.1} MiB/s")
        }
        Throughput::Elements(n) => {
            let eps = n as f64 / per_iter_secs;
            format!(" thrpt: {eps:>10.0} elem/s")
        }
    });
    println!(
        "bench: {name:<40} {:>12.1} ns/iter ({} iters){}",
        b.result_ns,
        b.iters,
        rate.unwrap_or_default()
    );
}

/// A set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_time: Duration,
    warm_up: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility (the vendored runner is
    /// time-bounded, not sample-bounded).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.sample_time = d;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), f);
        self
    }

    /// Run one parameterized benchmark.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.sample_time,
            result_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(Some(&self.name), &id.id, &bencher, self.throughput);
        let _ = &self.criterion;
    }

    /// Finish the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_measurement: Duration,
    default_warm_up: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_measurement: Duration::from_millis(800),
            default_warm_up: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Accepted for API compatibility; CLI arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Begin a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_time, warm_up) = (self.default_measurement, self.default_warm_up);
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_time,
            warm_up,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            warm_up: self.default_warm_up,
            measurement: self.default_measurement,
            result_ns: 0.0,
            iters: 0,
        };
        f(&mut bencher);
        report(None, &id.into().id, &bencher, None);
        self
    }
}

/// Define a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion {
            default_measurement: Duration::from_millis(10),
            default_warm_up: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.measurement_time(Duration::from_millis(10));
        group.warm_up_time(Duration::from_millis(2));
        group.throughput(Throughput::Bytes(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0..64u64).sum::<u64>());
        });
        group.finish();
    }
}
