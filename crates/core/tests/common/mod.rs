//! A deterministic mini-net for driving the session layer end to end:
//! a pool of (sharded) relays plus one [`SessionManager`] hosting the
//! endpoints, with optional loss / duplication / reordering applied to
//! every in-flight packet — the adversarial transport the chunk →
//! reassemble round-trip tests need.

use std::collections::{HashMap, VecDeque};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slicing_core::{
    OverlayAddr, RelayConfig, SendInstr, SessionId, SessionManager, ShardedRelay, Tick,
};

pub struct SessionNet {
    pub relays: HashMap<OverlayAddr, ShardedRelay>,
    pub queue: VecDeque<SendInstr>,
    pub now: Tick,
    /// Per-delivery drop probability.
    pub drop_prob: f64,
    /// Per-delivery duplication probability.
    pub dup_prob: f64,
    /// Deliver in random order instead of FIFO.
    pub shuffle: bool,
    rng: StdRng,
    pub delivered: Vec<(SessionId, u32, Vec<u8>)>,
    pub acked: Vec<(SessionId, u32)>,
    pub replies: Vec<(SessionId, u32, Vec<u8>)>,
    pub raw: Vec<(SessionId, u32, Vec<u8>)>,
}

impl SessionNet {
    pub fn new(
        relay_addrs: &[OverlayAddr],
        seed: u64,
        config: RelayConfig,
        relay_shards: usize,
    ) -> Self {
        SessionNet {
            relays: relay_addrs
                .iter()
                .map(|&a| (a, ShardedRelay::with_config(a, seed, config, relay_shards)))
                .collect(),
            queue: VecDeque::new(),
            now: Tick::ZERO,
            drop_prob: 0.0,
            dup_prob: 0.0,
            shuffle: false,
            rng: StdRng::seed_from_u64(seed ^ 0x005E_5510), // session net stream
            delivered: Vec::new(),
            acked: Vec::new(),
            replies: Vec::new(),
            raw: Vec::new(),
        }
    }

    pub fn submit(&mut self, sends: Vec<SendInstr>) {
        self.queue.extend(sends);
    }

    /// Deliver everything queued (and whatever those deliveries spawn)
    /// under the configured perturbations, then advance virtual time by
    /// `step_ms` and poll relays + manager once.
    pub fn step(&mut self, manager: &mut SessionManager, step_ms: u64) {
        let mut iterations = 0usize;
        while !self.queue.is_empty() {
            iterations += 1;
            assert!(iterations < 1_000_000, "session net did not quiesce");
            let idx = if self.shuffle {
                self.rng.gen_range(0..self.queue.len())
            } else {
                0
            };
            let instr = self.queue.swap_remove_back(idx).expect("non-empty");
            if self.drop_prob > 0.0 && self.rng.gen::<f64>() < self.drop_prob {
                continue;
            }
            if self.dup_prob > 0.0 && self.rng.gen::<f64>() < self.dup_prob {
                self.queue.push_back(instr.clone());
            }
            self.deliver(manager, instr);
        }
        self.now = self.now.plus(step_ms);
        let addrs: Vec<OverlayAddr> = self.relays.keys().copied().collect();
        for addr in addrs {
            let out = self.relays.get_mut(&addr).unwrap().poll(self.now);
            self.queue.extend(out.sends);
        }
        let out = manager.poll(self.now);
        self.absorb(out);
    }

    fn deliver(&mut self, manager: &mut SessionManager, instr: SendInstr) {
        if let Some(relay) = self.relays.get_mut(&instr.to) {
            let out = relay.handle_packet(self.now, instr.from, &instr.packet);
            self.queue.extend(out.sends);
            // Colocated receiver flows are not used by this harness (the
            // destination is a manager-hosted endpoint), so `received`
            // stays empty; assert that to catch mis-wired tests.
            assert!(out.received.is_empty(), "unexpected relay-side delivery");
            return;
        }
        // Not a relay: a manager attachment point (pseudo-source or
        // destination endpoint). Unknown flows die here like any
        // unroutable datagram.
        let out = manager.handle_packet(self.now, instr.to, instr.from, &instr.packet);
        self.absorb(out);
    }

    fn absorb(&mut self, out: slicing_core::SessionOutput) {
        self.queue.extend(out.sends);
        self.delivered.extend(out.delivered);
        self.acked.extend(out.acked);
        self.replies.extend(out.replies);
        self.raw.extend(out.raw);
    }

    /// Run `steps` rounds of [`SessionNet::step`].
    pub fn run(&mut self, manager: &mut SessionManager, steps: usize, step_ms: u64) {
        for _ in 0..steps {
            self.step(manager, step_ms);
        }
    }
}
