//! `session_bench`: thousands of live anonymous sessions multiplexed on
//! one node, measured on the production async runtime.
//!
//! One source node hosts every session in a sharded
//! `SessionManager` over shared pseudo-source ports; a pool of combined
//! relay+destination nodes (sharded relays with colocated destination
//! sessions) carries the traffic on the emulated LAN transport. Per
//! session count the bench reports:
//!
//! * **setup** — wall-clock to open + establish all sessions, per
//!   session (graph build, d′² setup packets, relay decode, session
//!   registration);
//! * **msgs/s** — aggregate acknowledged stream-message rate while all
//!   sessions are live (every message is chunked, delivered, reassembled
//!   and acked end to end);
//! * **teardown** — wall-clock to close all sessions, per session;
//! * **retx** — chunk retransmissions (0 on the lossless LAN profile
//!   unless timers misfire).
//!
//! Invariant checked every run: after the data phase drains, sent ==
//! acked == delivered — no per-message state (window entries, partial
//! reassembly) survives delivery anywhere in the node.
//!
//! `--quick` (or `SESSION_BENCH_QUICK=1`) runs the small sweep CI uses.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use slicing_bench::{banner, RunOpts, Table};
use slicing_core::{
    DestPlacement, GraphParams, OverlayAddr, RelayConfig, SessionConfig, SessionManager,
    ShardedRelay, SourceSession,
};
use slicing_overlay::{
    spawn_node, DestSessionSpec, EmulatedNet, NodeSpec, OverlayEvent, SessionEvent,
};
use slicing_sim::wan::NetProfile;
use tokio::sync::mpsc;

const RELAY_POOL: usize = 32;
const RELAY_SHARDS: usize = 2;
const SESSION_SHARDS: usize = 4;

struct RunResult {
    sessions: usize,
    established: usize,
    setup_us_per_session: f64,
    msgs_per_sec: f64,
    teardown_us_per_session: f64,
    retransmits: u64,
    drained: bool,
}

async fn run_count(sessions: usize, messages: usize, seed: u64) -> RunResult {
    let net = EmulatedNet::new(NetProfile::lan(), seed);
    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let (deliveries_tx, mut deliveries_rx) = mpsc::unbounded_channel();
    let (session_events_tx, mut session_events_rx) = mpsc::unbounded_channel();
    let epoch = Instant::now();
    // Quiet relays: no keepalive/liveness chatter, snappy flush so the
    // reverse (ack) path keeps the windows moving.
    let relay_config = RelayConfig {
        setup_flush_ms: 400,
        data_flush_ms: 150,
        keepalive_ms: 0,
        liveness_timeout_ms: 0,
        max_flows: 64 * 1024,
        ..RelayConfig::default()
    };
    let session_config = SessionConfig {
        retransmit_ms: 1_500,
        ack_interval_ms: 150,
        ..SessionConfig::default()
    };

    // The shared overlay: combined relay + destination nodes.
    let mut node_addrs = Vec::with_capacity(RELAY_POOL);
    let mut handles = Vec::new();
    for i in 0..RELAY_POOL {
        let port = net.attach(OverlayAddr(10_000 + i as u64));
        node_addrs.push(port.addr);
        handles.push(spawn_node(NodeSpec {
            relay: Some(ShardedRelay::with_config(
                port.addr,
                seed,
                relay_config,
                RELAY_SHARDS,
            )),
            sessions: None,
            ports: vec![port],
            dest_sessions: Some(DestSessionSpec {
                config: session_config,
                seed,
                deliveries: deliveries_tx.clone(),
            }),
            events: events_tx.clone(),
            session_events: None,
            epoch,
        }));
    }

    // The one node under test: every session lives here.
    let params = GraphParams::new(3, 2).with_dest_placement(DestPlacement::LastStage);
    let mut pseudo_ports = Vec::with_capacity(params.paths);
    for i in 0..params.paths {
        pseudo_ports.push(net.attach(OverlayAddr(1_000_000 + i as u64)));
    }
    let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
    let manager = SessionManager::new(SESSION_SHARDS, sessions + 8, session_config);
    let source_node = spawn_node(NodeSpec {
        relay: None,
        sessions: Some(manager),
        ports: pseudo_ports,
        dest_sessions: None,
        events: events_tx.clone(),
        session_events: Some(session_events_tx),
        epoch,
    });
    let plane = source_node.sessions.clone().expect("session plane");

    // Phase 1: open every session and wait for its receiver flow.
    let setup_start = Instant::now();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ids = Vec::with_capacity(sessions);
    for _ in 0..sessions {
        let dest = node_addrs[rng.gen_range(0..node_addrs.len())];
        let candidates: Vec<OverlayAddr> = node_addrs
            .iter()
            .copied()
            .filter(|&a| a != dest)
            .collect();
        let (source, setup) =
            SourceSession::establish(params, &pseudo_addrs, &candidates, dest, rng.gen())
                .expect("pool large enough");
        ids.push(plane.open_source(source, setup).await);
    }
    let mut established = 0usize;
    let establish_deadline = Instant::now() + Duration::from_secs(120);
    while established < sessions && Instant::now() < establish_deadline {
        tokio::select! {
            ev = events_rx.recv() => match ev {
                Some(OverlayEvent::Established { receiver: true, .. }) => established += 1,
                Some(_) => continue,
                None => break,
            },
            _ = tokio::time::sleep(Duration::from_millis(200)) => continue,
        }
    }
    let setup_us = setup_start.elapsed().as_micros() as f64 / sessions as f64;

    // Phase 2: every session streams `messages` messages concurrently.
    let payload = vec![0xA5u8; 400];
    let data_start = Instant::now();
    for &id in &ids {
        for _ in 0..messages {
            plane.send(id, payload.clone()).await;
        }
    }
    let expected = sessions * messages;
    let mut delivered = 0usize;
    let mut acked = 0usize;
    let data_deadline = Instant::now() + Duration::from_secs(180);
    while (delivered < expected || acked < expected) && Instant::now() < data_deadline {
        tokio::select! {
            dv = deliveries_rx.recv() => {
                if dv.is_some() { delivered += 1; } else { break; }
            }
            sev = session_events_rx.recv() => match sev {
                Some(SessionEvent::Acked { .. }) => acked += 1,
                Some(SessionEvent::Rejected { error, .. }) => {
                    eprintln!("send rejected: {error}");
                }
                Some(_) => continue,
                None => break,
            },
            _ = tokio::time::sleep(Duration::from_millis(200)) => continue,
        }
    }
    let data_elapsed = data_start.elapsed().as_secs_f64();

    // Phase 3: teardown.
    let teardown_start = Instant::now();
    for &id in &ids {
        plane.close(id).await;
    }
    let closed_deadline = Instant::now() + Duration::from_secs(30);
    while plane.stats().closed < sessions as u64 && Instant::now() < closed_deadline {
        tokio::time::sleep(Duration::from_millis(10)).await;
    }
    let teardown_us = teardown_start.elapsed().as_micros() as f64 / sessions as f64;

    let stats = plane.stats();
    let drained = delivered == expected
        && acked == expected
        && stats.msgs_acked == expected as u64
        && stats.msgs_delivered == 0; // dests are colocated, not manager-hosted
    source_node.abort();
    for h in handles {
        h.abort();
    }
    RunResult {
        sessions,
        established,
        setup_us_per_session: setup_us,
        msgs_per_sec: delivered as f64 / data_elapsed.max(1e-9),
        teardown_us_per_session: teardown_us,
        retransmits: stats.retransmits,
        drained,
    }
}

#[tokio::main(flavor = "multi_thread")]
async fn main() {
    let opts = RunOpts::from_args();
    let quick = opts.quick || std::env::var_os("SESSION_BENCH_QUICK").is_some();
    let (counts, messages): (&[usize], usize) = if quick {
        (&[64, 256], 2)
    } else {
        (&[256, 1024, 2048], 4)
    };
    banner(
        "session_bench — concurrent anonymous sessions on one node",
        &format!(
            "overlay {RELAY_POOL} nodes x {RELAY_SHARDS} shards, session shards {SESSION_SHARDS}, \
             L = 3, d = 2, {messages} msgs/session, 400 B payloads, emulated LAN"
        ),
        "msgs/s grows with session count until the node saturates; \
         setup/teardown cost per session stays flat",
    );
    let mut table = Table::new(&[
        "sessions",
        "established",
        "setup_us",
        "msgs_per_s",
        "teardown_us",
        "retx",
        "drained",
    ]);
    let mut all_drained = true;
    for &n in counts {
        let r = run_count(n, messages, opts.seed).await;
        all_drained &= r.drained;
        table.row(&[
            r.sessions as f64,
            r.established as f64,
            r.setup_us_per_session,
            r.msgs_per_sec,
            r.teardown_us_per_session,
            r.retransmits as f64,
            if r.drained { 1.0 } else { 0.0 },
        ]);
    }
    table.print();
    assert!(
        all_drained,
        "per-message state must drain after delivery at every session count"
    );
    println!("ok: every session count drained (sent == delivered == acked)");
}
