//! Shared helpers for the figure-regeneration binaries.
//!
//! Every binary prints the series of one paper figure as an aligned text
//! table (x value + one column per curve), with a header noting the paper
//! parameters and the qualitative expectation. Pass `--quick` to cut
//! trial counts ~10× for smoke runs.

#![forbid(unsafe_code)]

/// Runtime options common to all figure binaries.
#[derive(Clone, Copy, Debug)]
pub struct RunOpts {
    /// Reduced trial counts for smoke testing.
    pub quick: bool,
    /// Base RNG seed.
    pub seed: u64,
}

impl RunOpts {
    /// Parse from `std::env::args` (`--quick`, `--seed N`).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let seed = args
            .iter()
            .position(|a| a == "--seed")
            .and_then(|i| args.get(i + 1))
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        RunOpts { quick, seed }
    }

    /// `full` trials normally, `full / 10` (min 10) under `--quick`.
    pub fn trials(&self, full: usize) -> usize {
        if self.quick {
            (full / 10).max(10)
        } else {
            full
        }
    }
}

/// A printed table: header + rows of floats.
pub struct Table {
    columns: Vec<String>,
    rows: Vec<Vec<f64>>,
}

impl Table {
    /// Start a table with the given column names (first is the x-axis).
    pub fn new(columns: &[&str]) -> Self {
        Table {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, values: &[f64]) {
        assert_eq!(values.len(), self.columns.len(), "row width");
        self.rows.push(values.to_vec());
    }

    /// Render to stdout.
    pub fn print(&self) {
        let width = 14usize;
        let header: Vec<String> = self
            .columns
            .iter()
            .map(|c| format!("{c:>width$}"))
            .collect();
        println!("{}", header.join(" "));
        println!("{}", "-".repeat((width + 1) * self.columns.len()));
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| format!("{v:>width$.4}")).collect();
            println!("{}", cells.join(" "));
        }
    }

    /// Access rows (for assertions in integration tests).
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }
}

/// Print a figure banner.
pub fn banner(figure: &str, params: &str, expectation: &str) {
    println!("==========================================================");
    println!("{figure}");
    println!("  parameters : {params}");
    println!("  expectation: {expectation}");
    println!("==========================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rows_tracked() {
        let mut t = Table::new(&["x", "y"]);
        t.row(&[1.0, 2.0]);
        t.row(&[2.0, 3.0]);
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn quick_cuts_trials() {
        let opts = RunOpts { quick: true, seed: 1 };
        assert_eq!(opts.trials(1000), 100);
        assert_eq!(opts.trials(50), 10);
        let full = RunOpts { quick: false, seed: 1 };
        assert_eq!(full.trials(1000), 1000);
    }
}
