//! A hand-rolled Rust surface lexer.
//!
//! The analyzer does not parse Rust — it classifies every byte of a
//! source file as *code*, *comment* or *literal* and hands the rules a
//! same-length copy of the file in which comment and string/char-literal
//! bytes are blanked to spaces (newlines preserved). Token searches,
//! brace matching and statement scans then run on the blanked text
//! without ever tripping over `"unsafe"` inside a string or `{` inside a
//! doc example, while comment text is collected per line for the
//! `SAFETY:` / `lint:` marker rules.
//!
//! Handled: line comments, nested block comments, doc comments (both
//! are comments), plain/byte strings with escapes, raw strings
//! `r#"…"#` at any `#` depth (and `br#"…"#`), char literals including
//! escapes, and lifetimes (`'a`, `'_`) which are *not* char literals.

/// One comment's text (without the `//` / `/*` framing), attached to the
/// 1-indexed line it starts on. A block comment spanning several lines
/// contributes one entry per line so "comment run" walks stay line-based.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-indexed source line the fragment sits on.
    pub line: usize,
    /// The fragment's text, trimmed.
    pub text: String,
}

/// Lexer output: blanked code plus the comment table.
#[derive(Debug)]
pub struct Stripped {
    /// Same byte length as the input; every comment/literal byte is a
    /// space (newlines kept) so offsets and line numbers line up.
    pub code: String,
    /// All comment fragments, in file order.
    pub comments: Vec<Comment>,
    /// Byte offset of the start of each line (index 0 = line 1).
    pub line_starts: Vec<usize>,
}

impl Stripped {
    /// Map a byte offset into a 1-indexed line number.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// The blanked code content of a 1-indexed line.
    pub fn code_line(&self, line: usize) -> &str {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .copied()
            .unwrap_or(self.code.len());
        self.code[start..end].trim_end_matches('\n')
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Classify `src` into code and comments. Operates on bytes; multi-byte
/// UTF-8 only ever appears inside comments and literals in this
/// workspace, and is passed through untouched either way.
pub fn strip(src: &str) -> Stripped {
    let b = src.as_bytes();
    let n = b.len();
    let mut code = vec![b' '; n];
    let mut comments: Vec<Comment> = Vec::new();
    let mut line_starts = vec![0usize];
    let mut line = 1usize;

    // Collect a comment fragment per line.
    let mut push_comment = |start_line: usize, text: &str| {
        for (k, piece) in text.split('\n').enumerate() {
            comments.push(Comment {
                line: start_line + k,
                text: piece.trim().trim_start_matches(['/', '!', '*']).trim().to_string(),
            });
        }
    };

    let mut i = 0usize;
    let mut prev_ident = false; // was the previous *code* byte an identifier byte?
    while i < n {
        let c = b[i];
        if c == b'\n' {
            code[i] = b'\n';
            line += 1;
            line_starts.push(i + 1);
            i += 1;
            prev_ident = false;
            continue;
        }
        // Line comment.
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            push_comment(line, &src[start + 2..i]);
            prev_ident = false;
            continue;
        }
        // Block comment (nests).
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let start = i;
            let start_line = line;
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        code[i] = b'\n';
                        line += 1;
                        line_starts.push(i + 1);
                    }
                    i += 1;
                }
            }
            let end_text = if i >= 2 { i - 2 } else { i };
            push_comment(start_line, &src[start + 2..end_text.max(start + 2)]);
            prev_ident = false;
            continue;
        }
        // Raw string r"…" / r#"…"# / br#"…"# — only when `r`/`b` is not
        // the tail of a longer identifier.
        if (c == b'r' || c == b'b') && !prev_ident {
            let mut j = i;
            if b[j] == b'b' && j + 1 < n && b[j + 1] == b'r' {
                j += 1;
            }
            if b[j] == b'r' && j + 1 < n && (b[j + 1] == b'"' || b[j + 1] == b'#') {
                let mut k = j + 1;
                let mut hashes = 0usize;
                while k < n && b[k] == b'#' {
                    hashes += 1;
                    k += 1;
                }
                if k < n && b[k] == b'"' {
                    // Scan to closing quote + hashes.
                    k += 1;
                    'raw: while k < n {
                        if b[k] == b'\n' {
                            code[k] = b'\n';
                            line += 1;
                            line_starts.push(k + 1);
                            k += 1;
                            continue;
                        }
                        if b[k] == b'"' {
                            let mut h = 0usize;
                            while h < hashes && k + 1 + h < n && b[k + 1 + h] == b'#' {
                                h += 1;
                            }
                            if h == hashes {
                                k += 1 + hashes;
                                break 'raw;
                            }
                        }
                        k += 1;
                    }
                    i = k;
                    prev_ident = false;
                    continue;
                }
            }
        }
        // Plain / byte string.
        if c == b'"' || (c == b'b' && !prev_ident && i + 1 < n && b[i + 1] == b'"') {
            let mut k = if c == b'b' { i + 2 } else { i + 1 };
            while k < n {
                match b[k] {
                    b'\\' => k += 2,
                    b'"' => {
                        k += 1;
                        break;
                    }
                    b'\n' => {
                        code[k] = b'\n';
                        line += 1;
                        line_starts.push(k + 1);
                        k += 1;
                    }
                    _ => k += 1,
                }
            }
            i = k;
            prev_ident = false;
            continue;
        }
        // Char literal vs lifetime. Also b'…' byte literals.
        if c == b'\'' || (c == b'b' && !prev_ident && i + 1 < n && b[i + 1] == b'\'') {
            let q = if c == b'b' { i + 1 } else { i };
            let is_char = if q + 1 >= n {
                false
            } else if b[q + 1] == b'\\' {
                true
            } else if q + 2 < n && b[q + 2] == b'\'' {
                // 'x' — but a lifetime can also be followed by a quote in
                // rare `<'a>'` shapes; single ident char + quote is a char
                // literal in practice.
                true
            } else if !is_ident(b[q + 1]) && b[q + 1] != b'\'' {
                // e.g. '(' … non-identifier start must be a char literal.
                true
            } else {
                false
            };
            if is_char {
                let mut k = q + 1;
                if k < n && b[k] == b'\\' {
                    k += 2;
                    // \u{…}
                    if k <= n && k >= 1 && b[k - 1] == b'{' {
                        while k < n && b[k] != b'}' {
                            k += 1;
                        }
                        k += 1;
                    }
                } else {
                    // Possibly multi-byte UTF-8 char.
                    k += 1;
                    while k < n && (b[k] & 0xC0) == 0x80 {
                        k += 1;
                    }
                }
                while k < n && b[k] != b'\'' {
                    k += 1;
                }
                i = (k + 1).min(n);
                prev_ident = false;
                continue;
            } else {
                // Lifetime: keep the quote out of the code copy (it is
                // not a token any rule searches for), copy the ident.
                i += 1;
                prev_ident = false;
                continue;
            }
        }
        code[i] = c;
        prev_ident = is_ident(c);
        i += 1;
    }

    Stripped {
        // The blanked copy is pure ASCII by construction.
        code: String::from_utf8(code).unwrap_or_default(),
        comments,
        line_starts,
    }
}

/// Find every occurrence of `needle` in `code` that is bounded by
/// non-identifier bytes on the sides the flags ask for. Returns byte
/// offsets.
pub fn find_tokens(code: &str, needle: &str, left_bound: bool, right_bound: bool) -> Vec<usize> {
    let cb = code.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        let ok_left = !left_bound || at == 0 || !is_ident(cb[at - 1]);
        let after = at + needle.len();
        let ok_right = !right_bound || after >= cb.len() || !is_ident(cb[after]);
        if ok_left && ok_right {
            out.push(at);
        }
        from = at + needle.len().max(1);
    }
    out
}

/// Offset of the matching `}` for the first `{` at or after `from`, or
/// `None` if the file ends first. Returns `(open, close)` offsets.
pub fn match_braces(code: &str, from: usize) -> Option<(usize, usize)> {
    let cb = code.as_bytes();
    let open = cb[from..].iter().position(|&c| c == b'{')? + from;
    let mut depth = 0isize;
    for (k, &c) in cb[open..].iter().enumerate() {
        match c {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, open + k));
                }
            }
            _ => {}
        }
    }
    None
}

/// The identifier ending at byte offset `end` (exclusive), if any.
pub fn ident_ending_at(code: &str, end: usize) -> Option<&str> {
    let cb = code.as_bytes();
    let mut s = end;
    while s > 0 && is_ident(cb[s - 1]) {
        s -= 1;
    }
    if s == end || cb[s].is_ascii_digit() {
        None
    } else {
        Some(&code[s..end])
    }
}

/// The identifier starting at byte offset `start`, if any.
pub fn ident_starting_at(code: &str, start: usize) -> Option<&str> {
    let cb = code.as_bytes();
    if start >= cb.len() || !is_ident(cb[start]) || cb[start].is_ascii_digit() {
        return None;
    }
    let mut e = start;
    while e < cb.len() && is_ident(cb[e]) {
        e += 1;
    }
    Some(&code[start..e])
}

/// First non-whitespace byte offset at or after `from`.
pub fn skip_ws(code: &str, from: usize) -> usize {
    let cb = code.as_bytes();
    let mut i = from;
    while i < cb.len() && cb[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}
