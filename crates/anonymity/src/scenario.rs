//! One attack-scenario trial: sample the malicious set, derive the
//! attacker's knowledge, apply the Appendix-A probability assignments.

use rand::Rng;

use crate::metric::{anonymity_from_groups, uniform_anonymity, ProbabilityGroup};

/// Parameters of an anonymity scenario (§6.2 / Table 1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScenarioParams {
    /// Total overlay size `N` (excluding the source stage).
    pub n: u64,
    /// Path length `L` (relay stages).
    pub length: usize,
    /// Split factor `d` (slices needed to decode).
    pub split: usize,
    /// Stage width `d′` (= `d` without redundancy; > `d` for Fig. 10).
    pub width: usize,
    /// Fraction of malicious overlay nodes `f`.
    pub fraction_malicious: f64,
}

impl ScenarioParams {
    /// Common no-redundancy constructor.
    pub fn new(n: u64, length: usize, split: usize, f: f64) -> Self {
        ScenarioParams {
            n,
            length,
            split,
            width: split,
            fraction_malicious: f,
        }
    }

    /// With explicit redundancy (`width = d′`).
    pub fn with_width(mut self, width: usize) -> Self {
        self.width = width;
        self
    }

    /// Added redundancy `R = (d′ − d)/d`.
    pub fn redundancy(&self) -> f64 {
        (self.width - self.split) as f64 / self.split as f64
    }
}

/// Result of one sampled trial.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrialOutcome {
    /// Source anonymity (Eq. 8 → Eq. 5).
    pub source: f64,
    /// Destination anonymity (Eq. 11 → Eq. 5).
    pub dest: f64,
    /// Whether source Case 1 fired (stage 1 decodable by the attacker).
    pub source_case1: bool,
    /// Whether destination Case 1 fired (some stage upstream of the
    /// destination decodable).
    pub dest_case1: bool,
}

/// Sampled per-stage malicious counts for relay stages `1..=L`.
#[derive(Clone, Debug)]
pub struct MaliciousLayout {
    /// `bad[i]` = number of malicious nodes in stage `i+1`.
    pub bad: Vec<usize>,
    /// Destination stage (1-based).
    pub dest_stage: usize,
}

/// Sample a layout: each of the `L × d′` relay positions is malicious
/// independently with probability `f` (§6.2 picks `f·N` of `N` and draws
/// the graph from them; for `N ≫ L·d′` the Bernoulli approximation is
/// exact in the limit and conservative otherwise). The destination is a
/// uniformly random relay position and is never counted malicious.
pub fn sample_layout<R: Rng + ?Sized>(p: &ScenarioParams, rng: &mut R) -> MaliciousLayout {
    let dest_stage = rng.gen_range(1..=p.length);
    let dest_index = rng.gen_range(0..p.width);
    let mut bad = Vec::with_capacity(p.length);
    for stage in 1..=p.length {
        let mut count = 0;
        for idx in 0..p.width {
            if stage == dest_stage && idx == dest_index {
                continue; // the destination itself is honest
            }
            if rng.gen::<f64>() < p.fraction_malicious {
                count += 1;
            }
        }
        bad.push(count);
    }
    MaliciousLayout { bad, dest_stage }
}

/// Longest run of consecutive relay stages that each contain at least one
/// malicious node. Attackers in successive stages can confirm they are on
/// the same graph (flow-ids change per hop, §4.3.1/Appendix A); a run of
/// malicious stages `t1..=t2` reveals full membership of stages `t1−1`
/// through `t2+1` (every relay knows all its parents and children in the
/// complete bipartite stage graph).
pub fn longest_known_span(layout: &MaliciousLayout, length: usize) -> usize {
    let mut best = 0usize;
    let mut run = 0usize;
    for stage in 0..length {
        if layout.bad[stage] > 0 {
            run += 1;
        } else {
            run = 0;
        }
        if run > 0 {
            // Known span: parents of first malicious stage through
            // children of the last, clamped to real stages 0..=L.
            let t1 = stage + 1 - run + 1; // first malicious stage (1-based)
            let t2 = stage + 1;
            let lo = t1.saturating_sub(1);
            let hi = (t2 + 1).min(length);
            best = best.max(hi - lo + 1);
        }
    }
    best
}

/// Evaluate one trial for information slicing.
pub fn slicing_trial<R: Rng + ?Sized>(p: &ScenarioParams, rng: &mut R) -> TrialOutcome {
    let layout = sample_layout(p, rng);
    let n = p.n;
    let f = p.fraction_malicious;
    let honest = ((n as f64) * (1.0 - f)).max(2.0) as u64;
    let l = p.length;
    let w = p.width as u64;

    // --- Source anonymity (Appendix A.1) --------------------------------
    // Case 1: the attacker holds ≥ d slices of everything leaving stage 1,
    // so it can decode the downstream graph, count its depth, and conclude
    // the previous stage is the source stage.
    let source_case1 = layout.bad[0] >= p.split;
    let s_span = longest_known_span(&layout, l);
    let source = if source_case1 {
        0.0
    } else if s_span == 0 {
        uniform_anonymity(honest, n)
    } else {
        // Eq. 8: the first stage of the known window is the source stage
        // with probability 1/(L − s); Γ = its members.
        let denom = (l as f64 - s_span as f64).max(1.0);
        let q = (1.0 / denom).min(1.0);
        let gamma = w; // the window's first stage has d′ members
        let outside = honest.saturating_sub(gamma).max(1);
        anonymity_from_groups(
            &[
                ProbabilityGroup {
                    count: gamma,
                    p: q / gamma as f64,
                },
                ProbabilityGroup {
                    count: outside,
                    p: (1.0 - q) / outside as f64,
                },
            ],
            n,
        )
    };

    // --- Destination anonymity (Appendix A.2) ---------------------------
    // Case 1: some stage strictly upstream of the destination has ≥ d
    // malicious nodes; the attacker decodes everything downstream of it,
    // including the receiver flag.
    let dest_case1 = (1..layout.dest_stage).any(|stage| layout.bad[stage - 1] >= p.split);
    let dest = if dest_case1 {
        0.0
    } else if s_span == 0 {
        uniform_anonymity(honest, n)
    } else {
        // Eq. 11: the destination is in the known span with probability
        // s/L; the span's honest nodes share that mass.
        let s = (s_span as f64).min(l as f64);
        let span_nodes = (s_span as u64 * w).min(l as u64 * w);
        let span_honest =
            ((span_nodes as f64) * (1.0 - f)).round().max(1.0) as u64;
        let outside = honest.saturating_sub(span_honest).max(1);
        let p_in = (s / l as f64).min(1.0);
        anonymity_from_groups(
            &[
                ProbabilityGroup {
                    count: span_honest,
                    p: p_in / span_honest as f64,
                },
                ProbabilityGroup {
                    count: outside,
                    p: (1.0 - p_in) / outside as f64,
                },
            ],
            n,
        )
    };

    TrialOutcome {
        source,
        dest,
        source_case1,
        dest_case1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params(f: f64) -> ScenarioParams {
        ScenarioParams::new(10_000, 8, 3, f)
    }

    #[test]
    fn no_attackers_full_anonymity() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = slicing_trial(&params(0.0), &mut rng);
        assert!(t.source > 0.99);
        assert!(t.dest > 0.99);
        assert!(!t.source_case1 && !t.dest_case1);
    }

    #[test]
    fn all_attackers_zero_anonymity() {
        let mut rng = StdRng::seed_from_u64(2);
        // f = 1: stage 1 fully malicious -> both Case 1s fire for any
        // destination past stage 1; source always.
        let t = slicing_trial(&params(1.0), &mut rng);
        assert_eq!(t.source, 0.0);
        assert!(t.source_case1);
    }

    #[test]
    fn anonymity_decreases_with_f() {
        let mut rng = StdRng::seed_from_u64(3);
        let avg = |f: f64, rng: &mut StdRng| {
            let mut sum = 0.0;
            for _ in 0..400 {
                sum += slicing_trial(&params(f), rng).source;
            }
            sum / 400.0
        };
        let low = avg(0.05, &mut rng);
        let high = avg(0.5, &mut rng);
        assert!(
            low > high,
            "anonymity must fall with f: low={low} high={high}"
        );
    }

    #[test]
    fn span_detection() {
        let layout = MaliciousLayout {
            bad: vec![0, 1, 1, 0, 0, 1, 0, 0],
            dest_stage: 4,
        };
        // Run at stages 2-3 -> known 1..4 -> span 4; run at 6 -> known
        // 5..7 -> span 3.
        assert_eq!(longest_known_span(&layout, 8), 4);
        let empty = MaliciousLayout {
            bad: vec![0; 8],
            dest_stage: 1,
        };
        assert_eq!(longest_known_span(&empty, 8), 0);
        // Full graph malicious: clamped to all stages 0..=L.
        let full = MaliciousLayout {
            bad: vec![1; 8],
            dest_stage: 1,
        };
        assert_eq!(longest_known_span(&full, 8), 9);
    }

    #[test]
    fn dest_case1_requires_upstream_decodable_stage() {
        // Destination at stage 1: nothing upstream, Case 1 impossible.
        let p = params(0.9);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let layout = sample_layout(&p, &mut rng);
            if layout.dest_stage == 1 {
                let case1 =
                    (1..layout.dest_stage).any(|st| layout.bad[st - 1] >= p.split);
                assert!(!case1);
            }
        }
    }

    #[test]
    fn redundancy_weakens_dest_anonymity() {
        // Fig. 10: more width at fixed d makes full-stage compromise more
        // likely -> lower destination anonymity.
        let mut rng = StdRng::seed_from_u64(5);
        let avg_dest = |width: usize, rng: &mut StdRng| {
            let p = ScenarioParams::new(10_000, 8, 3, 0.1).with_width(width);
            let mut sum = 0.0;
            for _ in 0..600 {
                sum += slicing_trial(&p, rng).dest;
            }
            sum / 600.0
        };
        let no_red = avg_dest(3, &mut rng);
        let high_red = avg_dest(9, &mut rng);
        assert!(
            no_red > high_red,
            "redundancy should cost dest anonymity: {no_red} vs {high_red}"
        );
    }
}
