//! Config parser suite: fixture files with typed-error assertions plus
//! a parse/print round-trip property.

use proptest::prelude::*;
use slicing_node::config::{
    ConfigError, FaultProfile, NodeConfig, Roles, TransportKind,
};

fn fixture(name: &str) -> Result<NodeConfig, ConfigError> {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    NodeConfig::load(&path)
}

#[test]
fn minimal_fixture_parses_with_defaults() {
    let cfg = fixture("valid_minimal.toml").expect("minimal config is valid");
    assert_eq!(cfg.listen, 9001);
    assert_eq!(cfg.metrics_listen, 9101);
    // Everything else keeps its default.
    let defaults = NodeConfig::default();
    assert_eq!(cfg.roles, defaults.roles);
    assert_eq!(cfg.transport, TransportKind::Udp);
    assert_eq!(cfg.relay, defaults.relay);
    assert_eq!(cfg.session, defaults.session);
    assert!(cfg.peers.is_empty());
}

#[test]
fn full_fixture_sets_every_field() {
    let cfg = fixture("valid_full.toml").expect("full config is valid");
    assert_eq!(cfg.listen, 9001);
    assert_eq!(cfg.metrics_listen, 9101);
    assert_eq!(
        cfg.roles,
        Roles {
            relay: true,
            dest: true,
            session: true
        }
    );
    assert_eq!(cfg.relay_shards, 4);
    assert_eq!(cfg.session_shards, 3);
    assert_eq!(cfg.max_sessions, 128);
    assert_eq!(cfg.seed, 42);
    assert_eq!(cfg.peers, vec![9002, 9003]);
    assert_eq!(cfg.faults.loss, 0.05);
    assert_eq!(cfg.faults.reorder, 0.01);
    assert_eq!(cfg.faults.duplicate, 0.002);
    assert_eq!(cfg.relay.setup_flush_ms, 400);
    assert_eq!(cfg.relay.liveness_timeout_ms, 900);
    assert_eq!(cfg.session.window_chunks, 48);
    assert_eq!(cfg.session.gather_ttl_ms, 5000);
}

#[test]
fn missing_listen_is_typed() {
    assert_eq!(
        fixture("invalid_missing_listen.toml").unwrap_err(),
        ConfigError::Missing {
            key: "node.listen".to_string()
        }
    );
}

#[test]
fn nonloopback_listen_is_rejected_with_reason() {
    match fixture("invalid_nonloopback.toml").unwrap_err() {
        ConfigError::InvalidValue { line, key, reason } => {
            assert_eq!(line, 3);
            assert_eq!(key, "listen");
            assert!(reason.contains("loopback"), "reason: {reason}");
        }
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn unknown_key_names_section_and_line() {
    assert_eq!(
        fixture("invalid_unknown_key.toml").unwrap_err(),
        ConfigError::UnknownKey {
            line: 3,
            section: "node".to_string(),
            key: "shards".to_string()
        }
    );
}

#[test]
fn duplicate_key_reports_second_occurrence() {
    assert_eq!(
        fixture("invalid_duplicate_key.toml").unwrap_err(),
        ConfigError::DuplicateKey {
            line: 3,
            key: "listen".to_string()
        }
    );
}

#[test]
fn dest_without_relay_is_rejected() {
    match fixture("invalid_roles.toml").unwrap_err() {
        ConfigError::InvalidValue { key, reason, .. } => {
            assert_eq!(key, "roles");
            assert!(reason.contains("requires"), "reason: {reason}");
        }
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn unknown_transport_is_rejected() {
    match fixture("invalid_transport.toml").unwrap_err() {
        ConfigError::InvalidValue { key, reason, .. } => {
            assert_eq!(key, "kind");
            assert!(reason.contains("quic"), "reason: {reason}");
        }
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn out_of_range_probability_is_rejected() {
    match fixture("invalid_loss.toml").unwrap_err() {
        ConfigError::InvalidValue { key, reason, .. } => {
            assert_eq!(key, "loss");
            assert!(reason.contains("[0, 1)"), "reason: {reason}");
        }
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn bare_words_are_a_syntax_error() {
    assert_eq!(
        fixture("invalid_syntax.toml").unwrap_err(),
        ConfigError::Syntax { line: 3 }
    );
}

#[test]
fn unknown_section_is_typed() {
    assert_eq!(
        fixture("invalid_section.toml").unwrap_err(),
        ConfigError::UnknownSection {
            line: 4,
            section: "tuning".to_string()
        }
    );
}

#[test]
fn missing_file_is_io_error() {
    match fixture("no_such_file.toml").unwrap_err() {
        ConfigError::Io { path, .. } => assert!(path.ends_with("no_such_file.toml")),
        other => panic!("wrong error: {other:?}"),
    }
}

#[test]
fn port_zero_is_rejected() {
    let err = NodeConfig::parse(
        "[node]\nlisten = \"127.0.0.1:0\"\n[metrics]\nlisten = \"127.0.0.1:9101\"\n",
    )
    .unwrap_err();
    match err {
        ConfigError::InvalidValue { key, reason, .. } => {
            assert_eq!(key, "listen");
            assert!(reason.contains("port 0"), "reason: {reason}");
        }
        other => panic!("wrong error: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `parse(to_toml(c)) == c`: printing then re-parsing any valid
    /// config is the identity.
    #[test]
    fn to_toml_round_trips(
        listen in 1u16..,
        metrics_listen in 1u16..,
        role_pick in 0usize..4,
        relay_shards in 1usize..8,
        session_shards in 1usize..8,
        max_sessions in 1usize..10_000,
        seed in any::<u64>(),
        peers in collection::vec(1u16.., 0..5),
        udp in any::<bool>(),
        loss_millis in 0u32..1000,
        timings in collection::vec(1u64..100_000, 17..18),
    ) {
        let cfg = NodeConfig {
            listen,
            metrics_listen,
            roles: [
                Roles { relay: true, dest: false, session: false },
                Roles { relay: true, dest: true, session: false },
                Roles { relay: true, dest: true, session: true },
                Roles { relay: false, dest: false, session: true },
            ][role_pick],
            relay_shards,
            session_shards,
            max_sessions,
            seed,
            peers,
            transport: if udp { TransportKind::Udp } else { TransportKind::Tcp },
            faults: FaultProfile {
                loss: f64::from(loss_millis) / 1000.0,
                reorder: f64::from(loss_millis % 97) / 100.0,
                duplicate: f64::from(loss_millis % 13) / 50.0,
            },
            relay: slicing_core::RelayConfig {
                setup_flush_ms: timings[0],
                data_flush_ms: timings[1],
                flow_ttl_ms: timings[2],
                max_pending_data: timings[3] as usize,
                max_flows: timings[4] as usize,
                keepalive_ms: timings[5],
                liveness_timeout_ms: timings[6],
            },
            session: slicing_core::SessionConfig {
                window_chunks: timings[7] as usize,
                burst_chunks: timings[8] as usize,
                pace_ms: timings[9],
                retransmit_ms: timings[10],
                send_buffer_bytes: timings[11] as usize,
                ack_every_chunks: timings[12] as usize,
                ack_interval_ms: timings[13],
                reassembly_bytes: timings[14] as usize,
                max_gathers: timings[15] as usize,
                gather_ttl_ms: timings[16],
            },
        };
        let reparsed = NodeConfig::parse(&cfg.to_toml()).expect("printed config parses");
        prop_assert_eq!(reparsed, cfg);
    }
}
