//! Opaque overlay addresses.

/// An overlay node address.
///
/// The protocol layers treat addresses as opaque 64-bit values; the
//  overlay runtime maps them to real socket addresses.
/// For IPv4 deployments the canonical packing is `ip:port` in the low 48
/// bits (the paper's next-hop IPs, §4.3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OverlayAddr(pub u64);

impl OverlayAddr {
    /// Pack an IPv4 address and port.
    pub fn from_ipv4(octets: [u8; 4], port: u16) -> Self {
        let ip = u32::from_be_bytes(octets) as u64;
        OverlayAddr(ip << 16 | port as u64)
    }

    /// Unpack to an IPv4 address and port (if packed with
    /// [`OverlayAddr::from_ipv4`]).
    pub fn to_ipv4(self) -> ([u8; 4], u16) {
        let port = (self.0 & 0xFFFF) as u16;
        let ip = ((self.0 >> 16) & 0xFFFF_FFFF) as u32;
        (ip.to_be_bytes(), port)
    }

    /// Serialize little-endian.
    pub fn to_bytes(self) -> [u8; 8] {
        self.0.to_le_bytes()
    }

    /// Deserialize little-endian.
    pub fn from_bytes(bytes: [u8; 8]) -> Self {
        OverlayAddr(u64::from_le_bytes(bytes))
    }

    /// The all-zero sentinel used for absent children in fixed-size
    /// serializations.
    pub const NONE: OverlayAddr = OverlayAddr(0);
}

impl std::fmt::Debug for OverlayAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (ip, port) = self.to_ipv4();
        write!(f, "{}.{}.{}.{}:{}", ip[0], ip[1], ip[2], ip[3], port)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipv4_round_trip() {
        let a = OverlayAddr::from_ipv4([192, 168, 1, 2], 9000);
        assert_eq!(a.to_ipv4(), ([192, 168, 1, 2], 9000));
    }

    #[test]
    fn bytes_round_trip() {
        let a = OverlayAddr(0x1234_5678_9ABC_DEF0);
        assert_eq!(OverlayAddr::from_bytes(a.to_bytes()), a);
    }

    #[test]
    fn debug_format() {
        let a = OverlayAddr::from_ipv4([10, 0, 0, 1], 80);
        assert_eq!(format!("{a:?}"), "10.0.0.1:80");
    }
}
