//! The global thread-pool executor behind [`crate::spawn`] and
//! [`crate::runtime::block_on`].

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

// Task lifecycle states (see `wake_task` / `run_task` for transitions).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const NOTIFIED: u8 = 3;
const DONE: u8 = 4;

/// One spawned task: the future plus its scheduling state.
pub(crate) struct Task {
    future: Mutex<Option<BoxFuture>>,
    state: AtomicU8,
    pub(crate) aborted: AtomicBool,
}

impl Wake for Task {
    fn wake(self: Arc<Self>) {
        wake_task(&self);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        wake_task(self);
    }
}

fn wake_task(task: &Arc<Task>) {
    loop {
        match task.state.load(Ordering::Acquire) {
            IDLE => {
                if task
                    .state
                    .compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    executor().enqueue(task.clone());
                    return;
                }
            }
            RUNNING => {
                if task
                    .state
                    .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                    .is_ok()
                {
                    return;
                }
            }
            // Already queued, already notified, or finished: nothing to do.
            _ => return,
        }
    }
}

struct Executor {
    queue: Mutex<VecDeque<Arc<Task>>>,
    available: Condvar,
}

impl Executor {
    fn enqueue(&self, task: Arc<Task>) {
        self.queue.lock().unwrap().push_back(task);
        self.available.notify_one();
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut q = self.queue.lock().unwrap();
                loop {
                    if let Some(t) = q.pop_front() {
                        break t;
                    }
                    q = self.available.wait(q).unwrap();
                }
            };
            run_task(task);
        }
    }
}

fn run_task(task: Arc<Task>) {
    if task.aborted.load(Ordering::Acquire) {
        task.future.lock().unwrap().take();
        task.state.store(DONE, Ordering::Release);
        return;
    }
    task.state.store(RUNNING, Ordering::Release);
    let Some(mut fut) = task.future.lock().unwrap().take() else {
        task.state.store(DONE, Ordering::Release);
        return;
    };
    let waker = Waker::from(task.clone());
    let mut cx = Context::from_waker(&waker);
    match fut.as_mut().poll(&mut cx) {
        Poll::Ready(()) => {
            task.state.store(DONE, Ordering::Release);
        }
        Poll::Pending => {
            *task.future.lock().unwrap() = Some(fut);
            loop {
                match task.state.compare_exchange(
                    RUNNING,
                    IDLE,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    // A wake arrived mid-poll: reschedule immediately.
                    Err(NOTIFIED) => {
                        if task
                            .state
                            .compare_exchange(NOTIFIED, QUEUED, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            executor().enqueue(task);
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        }
    }
}

fn executor() -> &'static Executor {
    static EXECUTOR: OnceLock<Executor> = OnceLock::new();
    static STARTED: OnceLock<()> = OnceLock::new();
    let ex = EXECUTOR.get_or_init(|| Executor {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
    });
    STARTED.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(4, 8);
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("tokio-worker-{i}"))
                .spawn(move || executor().worker_loop())
                .expect("spawn executor worker");
        }
    });
    ex
}

/// Spawn a future onto the global executor, returning its task handle.
pub(crate) fn spawn_raw(fut: BoxFuture) -> Arc<Task> {
    let task = Arc::new(Task {
        future: Mutex::new(Some(fut)),
        state: AtomicU8::new(QUEUED),
        aborted: AtomicBool::new(false),
    });
    executor().enqueue(task.clone());
    task
}

/// Request the task stop at the next scheduling point and wake it so the
/// request is observed promptly.
pub(crate) fn abort_task(task: &Arc<Task>) {
    task.aborted.store(true, Ordering::Release);
    wake_task(task);
}

/// Drive a future to completion on the current thread.
pub(crate) fn block_on<F: Future>(fut: F) -> F::Output {
    struct Parker {
        thread: std::thread::Thread,
        notified: AtomicBool,
    }

    impl Wake for Parker {
        fn wake(self: Arc<Self>) {
            self.wake_by_ref();
        }

        fn wake_by_ref(self: &Arc<Self>) {
            self.notified.store(true, Ordering::Release);
            self.thread.unpark();
        }
    }

    let parker = Arc::new(Parker {
        thread: std::thread::current(),
        notified: AtomicBool::new(false),
    });
    let waker = Waker::from(parker.clone());
    let mut cx = Context::from_waker(&waker);
    let mut fut = std::pin::pin!(fut);
    loop {
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(out) => return out,
            Poll::Pending => {
                while !parker.notified.swap(false, Ordering::AcqRel) {
                    std::thread::park();
                }
            }
        }
    }
}
