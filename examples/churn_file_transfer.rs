//! A P2P-style chunked file transfer that survives relay churn — the
//! paper's headline robustness scenario (§4.4, §8): redundancy `d′ > d`
//! plus in-network regeneration keeps a long transfer alive while overlay
//! nodes die mid-session.
//!
//! Run with: `cargo run --example churn_file_transfer`

use information_slicing::core::testnet::TestNet;
use information_slicing::core::{DestPlacement, GraphParams, OverlayAddr, SourceSession};

fn main() {
    let candidates: Vec<OverlayAddr> = (0..40).map(|i| OverlayAddr(1_000 + i)).collect();
    let pseudo: Vec<OverlayAddr> = (0..3).map(|i| OverlayAddr(10 + i)).collect();
    let receiver = OverlayAddr(999);

    // d = 2 slices needed, d' = 3 sent: redundancy R = 0.5, so every
    // stage tolerates one failed node — and regenerates the loss for the
    // stages below it (§4.4.1).
    let params = GraphParams::new(5, 2)
        .with_paths(3)
        .with_dest_placement(DestPlacement::LastStage);
    let (mut source, setup) =
        SourceSession::establish(params, &pseudo, &candidates, receiver, 7).expect("establish");

    let mut nodes = candidates.clone();
    nodes.push(receiver);
    let mut net = TestNet::new(&nodes, 7);
    net.submit(setup);
    net.run_to_quiescence(Some(&mut source));

    // A "file" of 16 chunks.
    let chunks: Vec<Vec<u8>> = (0..16u8)
        .map(|i| format!("file-chunk-{i:02}-{}", "x".repeat(64)).into_bytes())
        .collect();

    // Kill one relay per stage, spread across the transfer.
    let victims: Vec<OverlayAddr> = (1..=3)
        .map(|stage| source.graph().stages[stage][0])
        .filter(|&a| a != receiver)
        .collect();

    for (i, chunk) in chunks.iter().enumerate() {
        if i == 4 || i == 8 || i == 12 {
            let victim = victims[i / 4 - 1];
            println!("!! relay {victim:?} churned out before chunk {i}");
            net.fail(victim);
        }
        let (_, sends) = source.send_message(chunk).expect("within chunk budget");
        net.submit(sends);
        // Each failed stage adds one timeout-flush layer; give the
        // cascade room to drain.
        net.settle(Some(&mut source), 1_200, 5);
    }
    net.settle(Some(&mut source), 1_200, 5);

    let got = net.messages_for(receiver);
    println!(
        "delivered {}/{} chunks across {} failed relays",
        got.len(),
        chunks.len(),
        victims.len()
    );
    assert_eq!(got.len(), chunks.len(), "transfer must survive the churn");
    for (i, (_, data)) in got.iter().enumerate() {
        assert_eq!(data, &chunks[i]);
    }
    println!("file intact — churn absorbed by redundancy + regeneration.");
}
