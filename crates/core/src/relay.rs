//! The relay state machine: the sans-IO equivalent of the paper's
//! "overlay daemon" (§7.1).
//!
//! A relay maintains a hash table keyed on cleartext flow-ids. For each
//! flow it gathers its own setup slices, decodes its per-node information
//! `I_x`, forwards the remaining slices per the slice-map (stripping one
//! per-hop transform layer, replacing consumed slices with padding), and
//! then relays data slices per the data-map or by network re-coding.
//! If the receiver flag is set, it additionally decodes and decrypts data
//! messages — while still forwarding downstream so that its neighbours
//! cannot tell it is the destination.
//!
//! # Sharding
//!
//! The state machine lives in [`RelayShard`]: one flow map, one
//! [`TimerWheel`], one RNG, one scratch buffer — everything a flow
//! touches is shard-local, because flows are independent (the only
//! cross-flow state a relay has is its stats and its reverse-flow-id
//! routing, both shared through [`FlowRouter`] /
//! [`RelayStatsAtomic`]). [`RelayNode`] is the single-shard facade (one
//! `&mut self` state machine, the classic per-node daemon), and
//! [`crate::shard::ShardedRelay`] fans the same engine out across `N`
//! shards keyed by `hash(flow_id) % N`.
//!
//! # Hot-path discipline
//!
//! The data plane is zero-copy end to end: gathered slices are CRC-valid
//! [`Bytes`] views into the receive buffers (no slice is copied out of a
//! packet), and outgoing slots are coded in place — a picked slice is one
//! `memcpy` into the packet under construction, and all regenerated
//! slices of a flush are accumulated straight into their packets' slots
//! by one fused multi-output pass over the gathered slices
//! ([`recombine::recombine_multi_into`]). Timeouts live in a hashed
//! [`TimerWheel`]: gathers and flows register their deadlines once, and
//! [`RelayShard::poll`] pops only what expired — it never scans live
//! flows and allocates nothing when idle. Stats stay plain shard-local
//! counters on the hot path; [`RelayShard::publish_stats`] folds the
//! delta into the shared atomics when a driver wants them visible.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use crate::replay::ReplayGuard;
use crate::shard::FlowRouter;

use slicing_codec::{coder, recombine, InfoSlice};
use slicing_crypto::SealingKey;
use slicing_graph::info::NodeInfo;
use slicing_graph::packets::SendInstr;
use slicing_graph::OverlayAddr;
use slicing_wire::{crc, FlowId, Packet, PacketBuilder, PacketHeader, PacketKind};

use crate::time::Tick;
use crate::wheel::TimerWheel;

/// Timer-wheel bucket width. One bucket per daemon poll period.
const WHEEL_GRANULARITY_MS: u64 = 50;
/// Timer-wheel bucket count (horizon = 12.8 s; longer deadlines such as
/// the flow TTL ride across rotations).
const WHEEL_BUCKETS: usize = 256;

/// Tunable relay behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RelayConfig {
    /// Flush a setup gather after this long even if parents are missing.
    pub setup_flush_ms: u64,
    /// Flush a data gather after this long even if parents are missing.
    pub data_flush_ms: u64,
    /// Evict idle flows after this long (the daemon's GC, §7.1).
    pub flow_ttl_ms: u64,
    /// Maximum data packets buffered for a not-yet-established flow.
    pub max_pending_data: usize,
    /// Maximum concurrently tracked flows (resource-exhaustion guard).
    pub max_flows: usize,
    /// How often an established flow announces liveness to its children
    /// (a [`slicing_wire::control::KEEPALIVE`] on each child's forward
    /// flow id). `0` disables keepalives.
    pub keepalive_ms: u64,
    /// A parent silent (no data, no keepalive) for longer than this is
    /// declared dead: the relay stops waiting for it in gathers and
    /// reports a sealed [`slicing_wire::control::FLOW_FAILED`] toward
    /// the source. Must comfortably exceed the upstream keepalive
    /// interval. `0` disables failure detection.
    pub liveness_timeout_ms: u64,
}

impl Default for RelayConfig {
    fn default() -> Self {
        RelayConfig {
            setup_flush_ms: 2_000,
            data_flush_ms: 1_000,
            flow_ttl_ms: 120_000,
            max_pending_data: 64,
            max_flows: 4_096,
            keepalive_ms: 10_000,
            liveness_timeout_ms: 30_000,
        }
    }
}

/// A data message decoded and decrypted by the destination.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReceivedData {
    /// The flow it arrived on.
    pub flow: FlowId,
    /// Message sequence number.
    pub seq: u32,
    /// Decrypted application payload.
    pub plaintext: Vec<u8>,
}

/// Counters exposed for tests and measurements.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelayStats {
    /// Packets accepted.
    pub packets_in: u64,
    /// Packets emitted.
    pub packets_out: u64,
    /// Flows successfully established (own info decoded).
    pub flows_established: u64,
    /// Setup gathers that failed to decode.
    pub setup_failures: u64,
    /// Data messages decoded as the destination.
    pub messages_received: u64,
    /// Packets dropped (unknown flow, malformed, over limits).
    pub drops: u64,
    /// Flows evicted by GC.
    pub flows_evicted: u64,
    /// Receive buffers that never parsed as a packet (counted by the
    /// I/O layer — daemon loop or sharded ingress — not by the engine,
    /// which only ever sees valid packets).
    pub garbage: u64,
    /// Parents declared dead by liveness tracking (churn detection).
    pub parents_lost: u64,
    /// Established flows whose info was replaced in place by an
    /// authenticated re-setup (source-side repair).
    pub flows_repaired: u64,
}

impl RelayStats {
    /// Field-wise difference (`self` must be a later snapshot of the
    /// same monotonically growing counters).
    fn delta_since(&self, earlier: &RelayStats) -> RelayStats {
        RelayStats {
            packets_in: self.packets_in - earlier.packets_in,
            packets_out: self.packets_out - earlier.packets_out,
            flows_established: self.flows_established - earlier.flows_established,
            setup_failures: self.setup_failures - earlier.setup_failures,
            messages_received: self.messages_received - earlier.messages_received,
            drops: self.drops - earlier.drops,
            flows_evicted: self.flows_evicted - earlier.flows_evicted,
            garbage: self.garbage - earlier.garbage,
            parents_lost: self.parents_lost - earlier.parents_lost,
            flows_repaired: self.flows_repaired - earlier.flows_repaired,
        }
    }

    /// Every counter as a `(name, value)` pair, in declaration order.
    ///
    /// This is the single authoritative enumeration of the relay
    /// counters: metrics exposition (the `slicing-node` daemon's
    /// `/metrics` endpoint) iterates it instead of hand-listing fields,
    /// so a counter added here is exported automatically and the text
    /// exposition can never drift from the atomics.
    pub fn counters(&self) -> [(&'static str, u64); 10] {
        [
            ("packets_in", self.packets_in),
            ("packets_out", self.packets_out),
            ("flows_established", self.flows_established),
            ("setup_failures", self.setup_failures),
            ("messages_received", self.messages_received),
            ("drops", self.drops),
            ("flows_evicted", self.flows_evicted),
            ("garbage", self.garbage),
            ("parents_lost", self.parents_lost),
            ("flows_repaired", self.flows_repaired),
        ]
    }

    /// Field-wise sum.
    pub(crate) fn add(&mut self, other: &RelayStats) {
        self.packets_in += other.packets_in;
        self.packets_out += other.packets_out;
        self.flows_established += other.flows_established;
        self.setup_failures += other.setup_failures;
        self.messages_received += other.messages_received;
        self.drops += other.drops;
        self.flows_evicted += other.flows_evicted;
        self.garbage += other.garbage;
        self.parents_lost += other.parents_lost;
        self.flows_repaired += other.flows_repaired;
    }
}

/// The shared, atomically updated mirror of a relay's [`RelayStats`]:
/// every shard folds its local counters into one instance of this, so a
/// driver (daemon, test, dashboard) can observe a live relay without
/// owning any shard — shards are owned by their worker tasks in the
/// sharded runtime.
///
/// Hot paths never touch these atomics: shards count into plain local
/// fields and [`RelayShard::publish_stats`] folds the delta in batches,
/// so the cacheline is not contended at packet rate.
#[derive(Debug, Default)]
pub struct RelayStatsAtomic {
    packets_in: AtomicU64,
    packets_out: AtomicU64,
    flows_established: AtomicU64,
    setup_failures: AtomicU64,
    messages_received: AtomicU64,
    drops: AtomicU64,
    flows_evicted: AtomicU64,
    garbage: AtomicU64,
    parents_lost: AtomicU64,
    flows_repaired: AtomicU64,
}

impl RelayStatsAtomic {
    /// Read a consistent-enough snapshot (individual counters are exact;
    /// cross-counter skew is bounded by one publish batch).
    pub fn snapshot(&self) -> RelayStats {
        RelayStats {
            packets_in: self.packets_in.load(Ordering::Relaxed),
            packets_out: self.packets_out.load(Ordering::Relaxed),
            flows_established: self.flows_established.load(Ordering::Relaxed),
            setup_failures: self.setup_failures.load(Ordering::Relaxed),
            messages_received: self.messages_received.load(Ordering::Relaxed),
            drops: self.drops.load(Ordering::Relaxed),
            flows_evicted: self.flows_evicted.load(Ordering::Relaxed),
            garbage: self.garbage.load(Ordering::Relaxed),
            parents_lost: self.parents_lost.load(Ordering::Relaxed),
            flows_repaired: self.flows_repaired.load(Ordering::Relaxed),
        }
    }

    /// Count one receive buffer that failed wire-level parsing. Called
    /// by the I/O layer, which has no shard to count into.
    pub fn record_garbage(&self) {
        self.garbage.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one packet dropped by the I/O layer (e.g. a sharded
    /// ingress shedding load when a shard's inbox is full).
    pub fn record_drop(&self) {
        self.drops.fetch_add(1, Ordering::Relaxed);
    }

    /// Fold a delta of per-shard counters in.
    fn fold(&self, d: &RelayStats) {
        // Skip the RMW entirely for untouched counters — a publish after
        // an idle poll is free.
        macro_rules! fold_field {
            ($f:ident) => {
                if d.$f != 0 {
                    self.$f.fetch_add(d.$f, Ordering::Relaxed);
                }
            };
        }
        fold_field!(packets_in);
        fold_field!(packets_out);
        fold_field!(flows_established);
        fold_field!(setup_failures);
        fold_field!(messages_received);
        fold_field!(drops);
        fold_field!(flows_evicted);
        fold_field!(garbage);
        fold_field!(parents_lost);
        fold_field!(flows_repaired);
    }
}

/// Everything a single `handle_packet`/`poll` call wants to tell the
/// driver.
#[derive(Clone, Debug, Default)]
pub struct RelayOutput {
    /// Packets to transmit.
    pub sends: Vec<SendInstr>,
    /// Messages decoded by this node as the destination.
    pub received: Vec<ReceivedData>,
    /// One entry per flow establishment this call (or merged batch of
    /// calls) completed: the flow id plus the receiver flag (true =
    /// this node is that flow's destination). A `Vec` rather than an
    /// `Option` so batching drivers can merge outputs without losing
    /// events; the flow id lets drivers attach per-flow machinery (e.g.
    /// a [`crate::session::DestSession`]) to freshly established
    /// receiver flows.
    pub established: Vec<(FlowId, bool)>,
    /// Receiver-flow seqs that arrived again *after* delivery (the
    /// replay guard suppressed the duplicate). A colocated
    /// [`crate::session::DestSession`] treats these as "my ack was
    /// lost" and re-announces its delivery state — without this signal
    /// a lost final ack would wedge the source's retransmit loop
    /// forever, since retransmitted chunks never re-deliver.
    pub replayed: Vec<(FlowId, u32)>,
    /// Flows whose neighbour lists a source-issued repair re-setup just
    /// spliced (flow id + receiver flag). A colocated
    /// [`crate::session::DestSession`] must refresh its routing from
    /// the relay's new flow info ([`DestSession::set_info`]) — its ack
    /// slices otherwise keep fanning to the dead parent, and with
    /// `d′ = d` the source can never decode another ack.
    ///
    /// [`DestSession::set_info`]: crate::session::DestSession::set_info
    pub rekeyed: Vec<(FlowId, bool)>,
}

impl RelayOutput {
    /// Append another call's output (drivers batching several
    /// `handle_packet` calls before touching the network use this too).
    pub fn merge(&mut self, other: RelayOutput) {
        self.sends.extend(other.sends);
        self.received.extend(other.received);
        self.established.extend(other.established);
        self.replayed.extend(other.replayed);
        self.rekeyed.extend(other.rekeyed);
    }
}

/// Per-(direction, seq) data-slice gathering. Its flush deadline lives
/// in the relay's timer wheel, registered at creation.
#[derive(Clone, Debug)]
struct DataGather {
    /// Parents (or children, for reverse flows) heard from.
    heard: HashSet<OverlayAddr>,
    /// The neighbour each retained slice came from (parallel to
    /// `slices`; Map-mode forwarding selects by origin).
    origins: Vec<OverlayAddr>,
    /// CRC-valid slice bytes (`coeffs ‖ payload`), zero-copy views into
    /// the receive buffers.
    slices: Vec<Bytes>,
    /// Already flushed downstream (late packets are ignored).
    flushed: bool,
    /// Already delivered to the application (destination only).
    delivered: bool,
}

impl DataGather {
    fn new() -> Self {
        DataGather {
            heard: HashSet::new(),
            origins: Vec::new(),
            slices: Vec::new(),
            flushed: false,
            delivered: false,
        }
    }
}

/// Setup-phase gathering: the packets received so far, by parent.
/// Cloning a [`Packet`] into the gather is O(1) — the wire buffer is
/// shared, not copied.
#[derive(Clone, Debug)]
struct SetupGather {
    first_seen: Tick,
    packets: HashMap<OverlayAddr, Packet>,
    flushed: bool,
}

/// Pending authenticated re-setup of an established flow (source-side
/// repair, §4.4.2 extended): clean info slices gathered per sender until
/// `d` decode into a [`NodeInfo`] proving knowledge of the flow's secret
/// key. Bounded (one per flow, capped senders) and reaped by a wheel
/// deadline, so forged re-setups cannot pin memory.
#[derive(Clone, Debug, Default)]
struct ResetupGather {
    /// One retained slice per sender (repair packets are one slot each).
    slices: HashMap<OverlayAddr, InfoSlice>,
}

/// An established flow.
#[derive(Clone, Debug)]
struct ActiveFlow {
    info: NodeInfo,
    /// Cached sealing state for the flow's secret key (subkeys + HMAC
    /// midstates derived once at establishment). A repair re-setup
    /// never changes the key — the authenticity check requires it to
    /// match — so the sealer survives splices untouched.
    sealer: SealingKey,
    last_activity: Tick,
    /// Forward data gathers by seq.
    data: HashMap<u32, DataGather>,
    /// Reverse data gathers by seq.
    reverse: HashMap<u32, DataGather>,
    /// Seqs already delivered to the application (receiver flows);
    /// outlives the per-seq gathers so replays never double-deliver.
    delivered: ReplayGuard,
    /// Last tick each parent was heard from (data, keepalive or
    /// control), parallel to `info.parents`.
    last_heard: Vec<Tick>,
    /// Parents currently considered dead, as a bitmask over parent
    /// indices (`d′ ≤ 64` by [`slicing_graph::GraphParams::validate`]).
    dead_parents: u64,
    /// Parents whose death has already been reported toward the source.
    reported_dead: u64,
    /// Hashes of recently forwarded FLOW_FAILED payloads (dedup against
    /// the `d′`-ary fan-in re-delivering the same report).
    seen_failures: Vec<u64>,
    /// In-progress authenticated re-setup, if any.
    resetup: Option<ResetupGather>,
}

impl ActiveFlow {
    /// Parents not currently marked dead.
    fn live_parent_count(&self) -> usize {
        self.info.parents.len() - (self.dead_parents.count_ones() as usize)
    }

    /// Revive a parent if it was marked dead (it spoke again, or repair
    /// replaced it); clears the reported flag so a later real death is
    /// reported afresh.
    fn revive_parent(&mut self, idx: usize) {
        let bit = 1u64 << idx;
        self.dead_parents &= !bit;
        self.reported_dead &= !bit;
    }
}

#[derive(Clone, Debug)]
enum FlowState {
    Gathering(SetupGather, Vec<(OverlayAddr, Packet)>),
    Active(Box<ActiveFlow>),
    /// Establishment failed; swallow traffic until GC.
    Dead(Tick),
}

/// A registered deadline; validated lazily when it fires (there are no
/// cancellation handles — state that resolved early just ignores the
/// stale entry).
#[derive(Clone, Copy, Debug)]
enum Deadline {
    /// Force-establish an overdue setup gather.
    SetupFlush(FlowId),
    /// Flush an overdue data gather.
    DataFlush {
        /// The (forward) flow the gather belongs to.
        flow: FlowId,
        /// Message sequence number.
        seq: u32,
        /// Reverse-direction gather?
        reverse: bool,
    },
    /// Candidate idle-GC point; re-armed if activity refreshed the flow.
    FlowExpiry(FlowId),
    /// Periodic liveness announcement to the flow's children.
    Keepalive(FlowId),
    /// Candidate parent-death point; like [`Deadline::FlowExpiry`] it is
    /// validated lazily against the flow's *current* `last_heard` state
    /// and re-armed at the true deadline, so a stale entry left behind
    /// by a repair (or by chatty parents) can never fire a spurious
    /// teardown.
    LivenessCheck(FlowId),
    /// Reap an abandoned re-setup gather.
    ResetupExpire(FlowId),
}

/// Outcome of the borrow-free establishment analysis.
enum Establish {
    /// Keep gathering (need more parents, or decode not yet possible).
    Wait,
    /// Decoding failed; `hard` failures (undecodable `NodeInfo`) kill the
    /// flow immediately, soft ones only on a forced (timed-out) attempt.
    Failed {
        /// Whether the failure is terminal regardless of `force`.
        hard: bool,
    },
    /// Our info decoded and the parent set is satisfied.
    Go(Box<NodeInfo>),
}

/// One shard of a relay's data plane: a complete, independent instance
/// of the flow state machine — its own flow map, timer wheel, RNG and
/// scratch buffers. Flows never span shards, so `N` shards handle `N`
/// disjoint flow sets with no synchronization on the packet path; the
/// only shared state is the [`FlowRouter`] (reverse-flow-id → shard,
/// written at establishment/eviction) and the [`RelayStatsAtomic`]
/// counters (folded in batches by [`publish_stats`]).
///
/// [`publish_stats`]: RelayShard::publish_stats
pub struct RelayShard {
    addr: OverlayAddr,
    /// This shard's index within its relay (0 for a single-shard node).
    index: usize,
    flows: HashMap<FlowId, FlowState>,
    /// Reverse flow-id → forward flow-id (shard-local; the router holds
    /// the cross-shard reverse → shard map).
    reverse_index: HashMap<FlowId, FlowId>,
    config: RelayConfig,
    /// Hot-path counters: plain shard-local fields.
    stats: RelayStats,
    /// The part of `stats` already folded into `shared`.
    folded: RelayStats,
    /// The relay-wide atomic mirror all shards fold into.
    shared: Arc<RelayStatsAtomic>,
    /// The relay-wide flow router (reverse-flow-id registrations).
    router: FlowRouter,
    rng: StdRng,
    /// Deadlines for every pending gather flush and flow expiry.
    wheel: TimerWheel<Deadline>,
    /// Reusable buffer for expired wheel entries (poll never allocates).
    expired: Vec<(Tick, Deadline)>,
    /// Reusable buffer for the outgoing-slot indexes that need a fresh
    /// combination during a flush (the flush path never allocates it).
    scratch_regen: Vec<usize>,
    /// Reusable seal output buffer for reverse-path sends (the sealed
    /// message is built here, then coded into the outgoing slots).
    scratch_seal: Vec<u8>,
}

impl RelayShard {
    /// Create shard `index` of a relay at `addr`. `config.max_flows` is
    /// this shard's own quota (callers building an `N`-shard relay
    /// divide the node budget before constructing shards).
    pub fn new(
        addr: OverlayAddr,
        seed: u64,
        config: RelayConfig,
        index: usize,
        router: FlowRouter,
        shared: Arc<RelayStatsAtomic>,
    ) -> Self {
        // Shard 0 keeps the historical single-shard stream so a 1-shard
        // relay is bit-compatible with the pre-sharding RelayNode.
        let stream = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        RelayShard {
            addr,
            index,
            flows: HashMap::new(),
            reverse_index: HashMap::new(),
            config,
            stats: RelayStats::default(),
            folded: RelayStats::default(),
            shared,
            router,
            rng: StdRng::seed_from_u64(seed ^ addr.0 ^ stream),
            wheel: TimerWheel::new(WHEEL_GRANULARITY_MS, WHEEL_BUCKETS),
            expired: Vec::new(),
            scratch_regen: Vec::new(),
            scratch_seal: Vec::new(),
        }
    }

    /// This node's address.
    pub fn addr(&self) -> OverlayAddr {
        self.addr
    }

    /// This shard's index within its relay.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Shard-local counters (excludes other shards; see
    /// [`RelayStatsAtomic::snapshot`] for the relay-wide view).
    pub fn stats(&self) -> RelayStats {
        self.stats
    }

    /// Fold counters accrued since the last publish into the shared
    /// atomic stats. Cheap when nothing changed; called by drivers at
    /// batch boundaries, never per packet.
    pub fn publish_stats(&mut self) {
        let delta = self.stats.delta_since(&self.folded);
        if delta != RelayStats::default() {
            self.shared.fold(&delta);
            self.folded = self.stats;
        }
    }

    /// The relay-wide atomic stats this shard folds into.
    pub fn shared_stats(&self) -> Arc<RelayStatsAtomic> {
        Arc::clone(&self.shared)
    }

    /// Number of live flows in this shard's table.
    pub fn flow_count(&self) -> usize {
        self.flows.len()
    }

    /// Number of pending timer-wheel entries (tests and diagnostics).
    pub fn pending_deadlines(&self) -> usize {
        self.wheel.len()
    }

    /// The decoded info of an established flow, if any (used by drivers
    /// to e.g. discover that this node is a destination).
    pub fn flow_info(&self, flow: FlowId) -> Option<&NodeInfo> {
        match self.flows.get(&flow) {
            Some(FlowState::Active(a)) => Some(&a.info),
            _ => None,
        }
    }

    /// Feed one packet into the state machine.
    // lint: hot-path
    pub fn handle_packet(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        self.stats.packets_in += 1;
        match packet.header.kind {
            PacketKind::Setup => self.handle_setup(now, from, packet),
            PacketKind::Data => self.handle_data(now, from, packet),
            PacketKind::Control => self.handle_control(now, from, packet),
        }
    }

    /// Drive timeouts: pop expired deadlines off the wheel and act on
    /// each. Does not scan live flows; allocation-free when nothing is
    /// due.
    pub fn poll(&mut self, now: Tick) -> RelayOutput {
        let mut out = RelayOutput::default();
        let mut expired = std::mem::take(&mut self.expired);
        expired.clear();
        self.wheel.poll_expired(now, &mut expired);
        for &(_, deadline) in &expired {
            match deadline {
                Deadline::SetupFlush(flow) => {
                    let overdue = matches!(
                        self.flows.get(&flow),
                        Some(FlowState::Gathering(g, _)) if !g.flushed
                    );
                    if overdue {
                        out.merge(self.try_establish(now, flow, true));
                    }
                }
                Deadline::DataFlush { flow, seq, reverse } => {
                    match self.gather_flushed(flow, seq, reverse) {
                        // Flow or gather already gone.
                        None => {}
                        // Flushed earlier (completeness beat the clock, or
                        // this is the quarantine firing after a timeout
                        // flush): the tombstone has swallowed late
                        // duplicates for a full window — drop it, so
                        // per-seq state cannot accumulate on long-lived
                        // flows.
                        Some(true) => self.remove_gather(flow, seq, reverse),
                        // Overdue: flush now, then keep the tombstone for
                        // one more window before the re-armed deadline
                        // removes it.
                        Some(false) => {
                            out.merge(self.flush_data(now, flow, seq, reverse));
                            self.wheel.schedule(
                                now.plus(self.config.data_flush_ms),
                                Deadline::DataFlush { flow, seq, reverse },
                            );
                        }
                    }
                }
                Deadline::FlowExpiry(flow) => self.check_expiry(now, flow),
                Deadline::Keepalive(flow) => out.merge(self.send_keepalives(now, flow)),
                Deadline::LivenessCheck(flow) => out.merge(self.check_liveness(now, flow)),
                Deadline::ResetupExpire(flow) => {
                    if let Some(FlowState::Active(a)) = self.flows.get_mut(&flow) {
                        a.resetup = None;
                    }
                }
            }
        }
        self.expired = expired;
        out
    }

    /// A [`Deadline::Keepalive`] fired: announce liveness to every child
    /// of the flow and re-arm. Dropped without re-arm once the flow is
    /// gone, so keepalives stop when GC collects the flow.
    fn send_keepalives(&mut self, now: Tick, flow: FlowId) -> RelayOutput {
        let interval = self.config.keepalive_ms;
        let mut out = RelayOutput::default();
        let Some(FlowState::Active(active)) = self.flows.get(&flow) else {
            return out;
        };
        if interval == 0 || active.info.children.is_empty() {
            return out;
        }
        for &(child_addr, child_flow) in &active.info.children {
            out.sends.push(SendInstr {
                from: self.addr,
                to: child_addr,
                // Our reverse flow id doubles as the membership token
                // the child checks against its parent list.
                packet: slicing_wire::control::keepalive(
                    child_flow,
                    active.info.reverse_flow_id,
                ),
            });
        }
        self.stats.packets_out += out.sends.len() as u64;
        self.wheel
            .schedule(now.plus(interval), Deadline::Keepalive(flow));
        out
    }

    /// A [`Deadline::LivenessCheck`] fired: declare every parent silent
    /// past the timeout dead, report each death toward the source
    /// (sealed under this flow's secret key, §9.4 confidentiality), and
    /// re-arm at the earliest deadline a still-live parent could miss.
    ///
    /// The entry is validated lazily against `last_heard` — parents
    /// refreshed by traffic (or replaced wholesale by a repair, which
    /// resets the liveness slate) simply push the next check out; a
    /// stale entry can never fire a spurious teardown.
    fn check_liveness(&mut self, now: Tick, flow: FlowId) -> RelayOutput {
        let timeout = self.config.liveness_timeout_ms;
        let mut out = RelayOutput::default();
        if timeout == 0 {
            return out;
        }
        let RelayShard {
            flows,
            stats,
            rng,
            addr,
            wheel,
            config: _,
            ..
        } = self;
        let Some(FlowState::Active(active)) = flows.get_mut(&flow) else {
            return out;
        };
        let mut next_due: Option<u64> = None;
        let mut newly_dead: Vec<usize> = Vec::new();
        for (idx, &heard) in active.last_heard.iter().enumerate() {
            if active.dead_parents & (1 << idx) != 0 {
                continue;
            }
            let due = heard.plus(timeout);
            if due.0 <= now.0 {
                newly_dead.push(idx);
            } else {
                next_due = Some(next_due.map_or(due.0, |d: u64| d.min(due.0)));
            }
        }
        for idx in newly_dead {
            let bit = 1u64 << idx;
            active.dead_parents |= bit;
            stats.parents_lost += 1;
            if active.reported_dead & bit != 0 {
                continue;
            }
            active.reported_dead |= bit;
            // Seal the dead parent's address under this flow's secret
            // key: forwarding relays learn nothing, the source (which
            // issued every per-node key) recovers and authenticates it.
            let dead_addr = active.info.parents[idx].0;
            let sealed = active.sealer.seal(&dead_addr.to_bytes(), rng);
            for (pidx, &(parent_addr, parent_rev)) in active.info.parents.iter().enumerate() {
                if active.dead_parents & (1 << pidx) != 0 {
                    continue;
                }
                out.sends.push(SendInstr {
                    from: *addr,
                    to: parent_addr,
                    packet: slicing_wire::control::flow_failed(parent_rev, &sealed),
                });
            }
        }
        stats.packets_out += out.sends.len() as u64;
        // Lazy re-arm at the true next deadline (only live parents can
        // still miss one).
        if let Some(due) = next_due {
            wheel.schedule(Tick(due), Deadline::LivenessCheck(flow));
        }
        out
    }

    /// Whether the gather for `(flow, seq, reverse)` exists and has
    /// flushed (`None` if the flow or gather is gone).
    fn gather_flushed(&self, flow: FlowId, seq: u32, reverse: bool) -> Option<bool> {
        let Some(FlowState::Active(active)) = self.flows.get(&flow) else {
            return None;
        };
        let gathers = if reverse { &active.reverse } else { &active.data };
        gathers.get(&seq).map(|g| g.flushed)
    }

    /// Drop a gather's per-seq state. Very late slices for the seq will
    /// re-gather (and be re-forwarded, deduplicated downstream by the
    /// receiving gathers' `heard` sets) — the bounded price of not
    /// holding per-message state for a flow's whole lifetime.
    fn remove_gather(&mut self, flow: FlowId, seq: u32, reverse: bool) {
        if let Some(FlowState::Active(active)) = self.flows.get_mut(&flow) {
            let gathers = if reverse {
                &mut active.reverse
            } else {
                &mut active.data
            };
            gathers.remove(&seq);
        }
    }

    /// A [`Deadline::FlowExpiry`] fired: evict the flow if it is actually
    /// idle, otherwise re-arm at its true expiry (the daemon's GC, §7.1).
    fn check_expiry(&mut self, now: Tick, flow: FlowId) {
        let ttl = self.config.flow_ttl_ms;
        let due = match self.flows.get(&flow) {
            None => return, // already evicted or re-established
            Some(FlowState::Gathering(g, _)) => g.first_seen.plus(ttl),
            Some(FlowState::Active(a)) => a.last_activity.plus(ttl),
            Some(FlowState::Dead(t)) => t.plus(ttl),
        };
        if due.0 <= now.0 {
            if let Some(FlowState::Active(a)) = self.flows.remove(&flow) {
                self.reverse_index.remove(&a.info.reverse_flow_id);
                self.router
                    .unregister_reverse(a.info.reverse_flow_id, self.index);
            }
            self.stats.flows_evicted += 1;
        } else {
            self.wheel.schedule(due, Deadline::FlowExpiry(flow));
        }
    }

    // ---- setup phase -----------------------------------------------------

    fn handle_setup(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        let flow = packet.header.flow_id;
        // Setup for an established flow: a source-side repair updating
        // this node's neighbour lists in place — authenticated by the
        // flow's secret key.
        if matches!(self.flows.get(&flow), Some(FlowState::Active(_))) {
            return self.handle_resetup(now, from, packet);
        }
        let at_capacity = self.flows.len() >= self.config.max_flows;
        match self.flows.entry(flow) {
            Entry::Occupied(mut e) => match e.get_mut() {
                FlowState::Gathering(g, _) => {
                    if g.flushed {
                        self.stats.drops += 1;
                        return RelayOutput::default();
                    }
                    // One shape per gather: a forged packet with a
                    // different geometry must not poison slot indexing
                    // when the gather is forwarded.
                    let consistent = g.packets.values().next().is_none_or(|first| {
                        let (a, b) = (&first.header, &packet.header);
                        a.d == b.d && a.slot_count == b.slot_count && a.slot_len == b.slot_len
                    });
                    if !consistent {
                        self.stats.drops += 1;
                        return RelayOutput::default();
                    }
                    g.packets.insert(from, packet.clone());
                }
                _ => {
                    // Duplicate setup for a dead flow: ignore (active
                    // flows were diverted to the re-setup path above).
                    self.stats.drops += 1;
                    return RelayOutput::default();
                }
            },
            Entry::Vacant(v) => {
                if at_capacity {
                    self.stats.drops += 1;
                    return RelayOutput::default();
                }
                let mut g = SetupGather {
                    first_seen: now,
                    packets: HashMap::new(),
                    flushed: false,
                };
                g.packets.insert(from, packet.clone());
                v.insert(FlowState::Gathering(g, Vec::new()));
                // Register the flow's deadlines once, at admission.
                self.wheel.schedule(
                    now.plus(self.config.setup_flush_ms),
                    Deadline::SetupFlush(flow),
                );
                self.wheel
                    .schedule(now.plus(self.config.flow_ttl_ms), Deadline::FlowExpiry(flow));
            }
        }
        // Try to establish once we *could* have enough: we don't know d'
        // until decode succeeds, so we try whenever ≥ d distinct parents
        // have delivered; `try_establish` without `force` only forwards
        // when the full parent set has arrived.
        let d = packet.header.d as usize;
        let have = match self.flows.get(&flow) {
            Some(FlowState::Gathering(g, _)) => g.packets.len(),
            _ => 0,
        };
        if have >= d {
            self.try_establish(now, flow, false)
        } else {
            RelayOutput::default()
        }
    }

    /// Attempt to decode our info and (once the parent set is complete, or
    /// on `force`) forward downstream.
    fn try_establish(&mut self, now: Tick, flow: FlowId, force: bool) -> RelayOutput {
        // Phase 1: read-only analysis of the gather (no packet clones).
        let (first_seen, decision) = {
            let Some(FlowState::Gathering(gather, _)) = self.flows.get(&flow) else {
                return RelayOutput::default();
            };
            if gather.flushed {
                return RelayOutput::default();
            }
            let Some(first) = gather.packets.values().next() else {
                return RelayOutput::default();
            };
            let d = first.header.d as usize;
            let slot_len = first.header.slot_len as usize;
            let decision = match slot_len.checked_sub(d + 4) {
                None => Establish::Failed { hard: false },
                Some(block_len) => {
                    // Decode our own info from the slot-0 slices.
                    let own: Vec<InfoSlice> = gather
                        .packets
                        .values()
                        .filter_map(|p| parse_clean_slot(d, block_len, p.slot(0)))
                        .collect();
                    match coder::decode(&own, d) {
                        Err(_) => Establish::Failed { hard: false },
                        Ok(bytes) => match NodeInfo::decode(&bytes) {
                            Err(_) => Establish::Failed { hard: true },
                            Ok(info) => {
                                if !force && gather.packets.len() < info.d_prime as usize {
                                    // Parent set incomplete; wait for the
                                    // rest (or the timeout).
                                    Establish::Wait
                                } else {
                                    Establish::Go(Box::new(info))
                                }
                            }
                        },
                    }
                }
            };
            (gather.first_seen, decision)
        };

        // Phase 2: act, with the gather borrow released.
        match decision {
            Establish::Wait => RelayOutput::default(),
            Establish::Failed { hard } => {
                if hard || force {
                    self.stats.setup_failures += 1;
                    self.flows.insert(flow, FlowState::Dead(first_seen));
                }
                RelayOutput::default()
            }
            Establish::Go(info) => {
                // Take ownership of the gathered packets — no clone.
                let Some(FlowState::Gathering(gather, pending)) = self.flows.remove(&flow) else {
                    return RelayOutput::default();
                };
                let mut out = RelayOutput {
                    established: vec![(flow, info.receiver)],
                    ..RelayOutput::default()
                };
                out.sends = self.forward_setup(&info, &gather.packets);
                self.stats.packets_out += out.sends.len() as u64;
                self.stats.flows_established += 1;

                // Transition to Active and replay any buffered early data.
                self.reverse_index.insert(info.reverse_flow_id, flow);
                self.router.register_reverse(info.reverse_flow_id, self.index);
                let parent_count = info.parents.len();
                let has_children = !info.children.is_empty();
                let sealer = SealingKey::new(&info.secret_key);
                self.flows.insert(
                    flow,
                    FlowState::Active(Box::new(ActiveFlow {
                        info: *info,
                        sealer,
                        last_activity: now,
                        data: HashMap::new(),
                        reverse: HashMap::new(),
                        delivered: ReplayGuard::default(),
                        last_heard: vec![now; parent_count],
                        dead_parents: 0,
                        reported_dead: 0,
                        seen_failures: Vec::new(),
                        resetup: None,
                    })),
                );
                // Liveness plane: announce downstream, watch upstream.
                if self.config.keepalive_ms > 0 && has_children {
                    self.wheel.schedule(
                        now.plus(self.config.keepalive_ms),
                        Deadline::Keepalive(flow),
                    );
                }
                if self.config.liveness_timeout_ms > 0 && parent_count > 0 {
                    self.wheel.schedule(
                        now.plus(self.config.liveness_timeout_ms),
                        Deadline::LivenessCheck(flow),
                    );
                }
                for (from, p) in pending {
                    out.merge(self.handle_data(now, from, &p));
                }
                out
            }
        }
    }

    /// Build the downstream setup packets per the slice-map (§4.3.6),
    /// coding each slot in place: copy the parent's slot into the packet
    /// under construction, strip our transform layer there (§9.4(a)), or
    /// fill with random padding.
    fn forward_setup(
        &mut self,
        info: &NodeInfo,
        packets: &HashMap<OverlayAddr, Packet>,
    ) -> Vec<SendInstr> {
        // Nothing to forward for last-stage nodes — or for flows
        // (re-)established from repair setup packets, which carry no
        // downstream slices (`out_real_slots == 0`): the source delivers
        // every affected node's info directly, so forwarding would only
        // spray padding at the children.
        if info.children.is_empty() || info.out_real_slots == 0 {
            return Vec::new();
        }
        let slots_n = info.slots as usize;
        let slot_len = packets
            .values()
            .next()
            .map(|p| p.header.slot_len)
            .unwrap_or(0);
        let mut sends = Vec::with_capacity(info.children.len());
        for (j, &(child_addr, child_flow)) in info.children.iter().enumerate() {
            let mut builder = PacketBuilder::new(PacketHeader {
                kind: PacketKind::Setup,
                flow_id: child_flow,
                seq: 0,
                d: info.d,
                slot_count: slots_n as u8,
                slot_len,
            });
            for s in 0..slots_n {
                let slot = builder.slot();
                let parent_packet = info.slice_map[j][s]
                    .and_then(|idx| info.parents.get(idx as usize))
                    .and_then(|&(addr, _)| packets.get(&addr))
                    // The gather admits one shape only, but a slice-map
                    // built for a deeper graph could still point past
                    // this packet's slots; pad rather than panic.
                    .filter(|p| s + 1 < p.header.slot_count as usize);
                match parent_packet {
                    Some(p) => {
                        // Forward incoming slot s+1, stripping our
                        // transform layer (§9.4(a)).
                        slot.copy_from_slice(p.slot(s + 1));
                        info.transform.unapply(slot);
                    }
                    None => self.rng.fill_bytes(slot),
                }
            }
            sends.push(SendInstr {
                from: self.addr,
                to: child_addr,
                packet: builder.build(),
            });
        }
        sends
    }

    /// Setup slices arriving for an *established* flow: a source-side
    /// repair (§4.4.2 extended) replacing this node's neighbour lists in
    /// place. The new info must prove knowledge of the flow's secret key
    /// (and preserve the flow's identity — reverse id, `d`, `d′`,
    /// receiver flag), so only the source that built the flow can splice
    /// new routes into it; anything else is dropped and the bounded
    /// gather is reaped by a wheel deadline.
    fn handle_resetup(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        let flow = packet.header.flow_id;
        let RelayShard {
            flows,
            stats,
            wheel,
            config,
            ..
        } = self;
        let Some(FlowState::Active(active)) = flows.get_mut(&flow) else {
            stats.drops += 1;
            return RelayOutput::default();
        };
        let d = active.info.d as usize;
        let slot_len = packet.header.slot_len as usize;
        let slice = (packet.header.d as usize == d)
            .then(|| slot_len.checked_sub(d + 4))
            .flatten()
            .and_then(|block_len| parse_clean_slot(d, block_len, packet.slot(0)));
        let Some(slice) = slice else {
            stats.drops += 1;
            return RelayOutput::default();
        };
        if active.resetup.is_none() {
            active.resetup = Some(ResetupGather::default());
            wheel.schedule(
                now.plus(config.setup_flush_ms),
                Deadline::ResetupExpire(flow),
            );
        }
        let gather = active.resetup.as_mut().expect("created above");
        // One coded shape per gather, bounded sender set.
        let consistent = gather
            .slices
            .values()
            .next()
            .is_none_or(|s| s.payload.len() == slice.payload.len());
        if !consistent || (gather.slices.len() >= 64 && !gather.slices.contains_key(&from)) {
            stats.drops += 1;
            return RelayOutput::default();
        }
        gather.slices.insert(from, slice);
        if gather.slices.len() < d {
            return RelayOutput::default();
        }
        let slices: Vec<InfoSlice> = gather.slices.values().cloned().collect();
        let Ok(bytes) = coder::decode(&slices, d) else {
            // Not yet decodable (dependent combination or noise): keep
            // gathering until more slices or the reaper arrive.
            return RelayOutput::default();
        };
        let Ok(new_info) = NodeInfo::decode(&bytes) else {
            active.resetup = None;
            stats.drops += 1;
            return RelayOutput::default();
        };
        let cur = &active.info;
        let authentic = new_info.secret_key == cur.secret_key
            && new_info.reverse_flow_id == cur.reverse_flow_id
            && new_info.d == cur.d
            && new_info.d_prime == cur.d_prime
            && new_info.receiver == cur.receiver;
        if !authentic {
            active.resetup = None;
            stats.drops += 1;
            return RelayOutput::default();
        }
        if new_info == *cur {
            // Idempotent duplicate: the leftover d′−d slices of an
            // already-applied repair (the gather completes at d) decode
            // to the same neighbour lists. Applying again would reset
            // the liveness slate for nothing — worst case masking a
            // real death for a full timeout — and over-count repairs.
            active.resetup = None;
            return RelayOutput::default();
        }
        // Splice the repaired neighbour lists into the live flow: data
        // gathers, pending seqs and the replay guard all survive; the
        // liveness slate resets so stale deadlines validate cleanly.
        active.info = new_info;
        active.resetup = None;
        active.last_heard = vec![now; active.info.parents.len()];
        active.dead_parents = 0;
        active.reported_dead = 0;
        active.last_activity = now;
        stats.flows_repaired += 1;
        if config.liveness_timeout_ms > 0 && !active.info.parents.is_empty() {
            wheel.schedule(
                now.plus(config.liveness_timeout_ms),
                Deadline::LivenessCheck(flow),
            );
        }
        RelayOutput {
            rekeyed: vec![(flow, active.info.receiver)],
            ..RelayOutput::default()
        }
    }

    // ---- control plane ---------------------------------------------------

    /// Keepalives (downstream, on forward flow ids) and failure reports
    /// (upstream, on reverse flow ids).
    fn handle_control(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        let mut out = RelayOutput::default();
        let Some((op, payload)) = slicing_wire::control::parse(packet) else {
            self.stats.drops += 1;
            return out;
        };
        let flow = packet.header.flow_id;
        match op {
            slicing_wire::control::KEEPALIVE => {
                let Some(FlowState::Active(active)) = self.flows.get_mut(&flow) else {
                    self.stats.drops += 1;
                    return out;
                };
                // Only the flow's own parents may vouch for themselves,
                // and the payload must carry the parent's reverse flow
                // id — a membership token a transport-level address
                // forgery does not know, so a forged keepalive cannot
                // suppress failure detection.
                let Some(idx) = active.info.parents.iter().position(|&(a, _)| a == from)
                else {
                    self.stats.drops += 1;
                    return out;
                };
                let token_ok = <[u8; 8]>::try_from(payload)
                    .is_ok_and(|b| u64::from_le_bytes(b) == active.info.parents[idx].1 .0);
                if !token_ok {
                    self.stats.drops += 1;
                    return out;
                }
                active.last_heard[idx] = now;
                active.last_activity = now;
                let was_dead = active.dead_parents & (1 << idx) != 0;
                active.revive_parent(idx);
                if was_dead && self.config.liveness_timeout_ms > 0 {
                    // The liveness heartbeat stopped re-arming when every
                    // parent was dead or the entry went stale; restart it
                    // for the revived parent.
                    self.wheel.schedule(
                        now.plus(self.config.liveness_timeout_ms),
                        Deadline::LivenessCheck(flow),
                    );
                }
            }
            slicing_wire::control::FLOW_FAILED => {
                // A downstream relay lost a neighbour; relay the sealed
                // report toward the source along the reverse path.
                let Some(&fwd) = self.reverse_index.get(&flow) else {
                    self.stats.drops += 1;
                    return out;
                };
                let RelayShard {
                    flows, stats, addr, ..
                } = self;
                let Some(FlowState::Active(active)) = flows.get_mut(&fwd) else {
                    stats.drops += 1;
                    return out;
                };
                if !active.info.children.iter().any(|&(a, _)| a == from) {
                    stats.drops += 1;
                    return out;
                }
                active.last_activity = now;
                // The d′-ary fan-in re-delivers each report d′ times;
                // forward each distinct payload once.
                let h = hash_bytes(payload);
                if active.seen_failures.contains(&h) {
                    return out;
                }
                if active.seen_failures.len() >= 32 {
                    active.seen_failures.remove(0);
                }
                active.seen_failures.push(h);
                for (pidx, &(parent_addr, parent_rev)) in
                    active.info.parents.iter().enumerate()
                {
                    if active.dead_parents & (1 << pidx) != 0 {
                        continue;
                    }
                    out.sends.push(SendInstr {
                        from: *addr,
                        to: parent_addr,
                        packet: slicing_wire::control::flow_failed(parent_rev, payload),
                    });
                }
                stats.packets_out += out.sends.len() as u64;
            }
            _ => {
                self.stats.drops += 1;
            }
        }
        out
    }

    // ---- data phase ------------------------------------------------------

    // lint: hot-path
    fn handle_data(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        let flow = packet.header.flow_id;
        // Reverse traffic? Map to the forward flow.
        if let Some(&fwd) = self.reverse_index.get(&flow) {
            return self.accumulate_data(now, fwd, from, packet, true);
        }
        match self.flows.get_mut(&flow) {
            Some(FlowState::Active(_)) => self.accumulate_data(now, flow, from, packet, false),
            Some(FlowState::Gathering(_, pending)) => {
                // Data raced ahead of setup; buffer a bounded amount
                // (an O(1) buffer clone — the wire bytes are shared).
                if pending.len() < self.config.max_pending_data {
                    // lint: allow(hot-path) — Packet clones share the wire Bytes buffer: O(1) refcount bump, no copy.
                    pending.push((from, packet.clone()));
                } else {
                    self.stats.drops += 1;
                }
                RelayOutput::default()
            }
            Some(FlowState::Dead(_)) | None => {
                self.stats.drops += 1;
                RelayOutput::default()
            }
        }
    }

    // lint: hot-path
    fn accumulate_data(
        &mut self,
        now: Tick,
        flow: FlowId,
        from: OverlayAddr,
        packet: &Packet,
        is_reverse: bool,
    ) -> RelayOutput {
        let seq = packet.header.seq;
        let data_flush_ms = self.config.data_flush_ms;
        let liveness_timeout_ms = self.config.liveness_timeout_ms;
        // All hot-path state updates below borrow disjoint fields
        // (`flows`, `stats`, `wheel`); nothing is cloned per packet.
        let complete = {
            let Some(FlowState::Active(active)) = self.flows.get_mut(&flow) else {
                self.stats.drops += 1;
                return RelayOutput::default();
            };
            active.last_activity = now;
            // Only the flow's own neighbours may contribute slices:
            // parents on the forward path, children on the reverse.
            // Anything else could poison the gather's shape or inflate
            // the completeness count toward a premature flush. A
            // legitimate parent also refreshes its liveness slot — and
            // revives itself if it had been declared dead (a repaired or
            // merely slow neighbour rejoins the expected set).
            if is_reverse {
                if !active.info.children.iter().any(|&(a, _)| a == from) {
                    self.stats.drops += 1;
                    return RelayOutput::default();
                }
            } else {
                let Some(idx) = active.info.parents.iter().position(|&(a, _)| a == from)
                else {
                    self.stats.drops += 1;
                    return RelayOutput::default();
                };
                active.last_heard[idx] = now;
                if active.dead_parents & (1 << idx) != 0 {
                    active.revive_parent(idx);
                    if liveness_timeout_ms > 0 {
                        self.wheel.schedule(
                            now.plus(liveness_timeout_ms),
                            Deadline::LivenessCheck(flow),
                        );
                    }
                }
            }
            // Completeness horizon: parents declared dead are no longer
            // waited for, so one churned-out neighbour does not push
            // every subsequent message into the flush timeout.
            let expected = if is_reverse {
                active.info.children.len()
            } else {
                active.live_parent_count()
            };
            // Replay of a seq this destination already delivered: even if
            // the per-seq gather was reaped, the guard remembers.
            let already_delivered =
                !is_reverse && active.info.receiver && active.delivered.contains(seq);
            let info = &active.info;
            let d = info.d as usize;
            let gathers = if is_reverse {
                &mut active.reverse
            } else {
                &mut active.data
            };
            let gather = match gathers.entry(seq) {
                Entry::Occupied(e) => e.into_mut(),
                Entry::Vacant(v) => {
                    // First slice of this message: register its flush
                    // deadline once; the wheel will fire it if the
                    // parent set never completes.
                    self.wheel.schedule(
                        now.plus(data_flush_ms),
                        Deadline::DataFlush {
                            flow,
                            seq,
                            reverse: is_reverse,
                        },
                    );
                    v.insert(DataGather::new())
                }
            };
            if gather.flushed && (gather.delivered || already_delivered) {
                self.stats.drops += 1;
                // A replayed seq on a receiver flow means the sender
                // did not hear our delivery state: surface it so a
                // colocated destination session can re-acknowledge.
                let mut out = RelayOutput::default();
                if active.info.receiver && !is_reverse {
                    out.replayed.push((flow, seq));
                }
                return out;
            }
            if !gather.heard.insert(from) {
                // Duplicate from the same neighbour.
                self.stats.drops += 1;
                return RelayOutput::default();
            }
            let slot_len = packet.header.slot_len as usize;
            if slot_len >= d + 4 {
                for i in 0..packet.header.slot_count as usize {
                    // Retain CRC-valid slices as zero-copy views into the
                    // receive buffer (coeffs ‖ payload, CRC stripped).
                    if crc::check_crc(packet.slot(i)).is_none() {
                        continue;
                    }
                    debug_assert_eq!(
                        packet.slot(i).len(),
                        slot_len,
                        "wire slot length disagrees with header geometry"
                    );
                    let body = packet.slot_bytes(i).slice(..slot_len - 4);
                    // One coded shape per gather: a CRC-valid slot of a
                    // different length can be neither combined nor
                    // decoded with the rest, and must not reach the
                    // recombination kernels (whose shape check would
                    // panic the relay).
                    let consistent = gather
                        .slices
                        .first()
                        .is_none_or(|s| s.len() == body.len());
                    if consistent {
                        gather.origins.push(from);
                        gather.slices.push(body);
                    } else {
                        self.stats.drops += 1;
                    }
                }
            }
            gather.heard.len() >= expected
        };
        if complete {
            self.flush_data(now, flow, seq, is_reverse)
        } else {
            RelayOutput::default()
        }
    }

    /// Forward (and, at the destination, deliver) a gathered data message.
    // lint: hot-path
    fn flush_data(&mut self, _now: Tick, flow: FlowId, seq: u32, is_reverse: bool) -> RelayOutput {
        // Split the borrow: the flow entry, the stats, the RNG, the
        // regen scratch and our address are disjoint fields.
        let RelayShard {
            flows,
            stats,
            rng,
            addr,
            scratch_regen,
            ..
        } = self;
        let Some(FlowState::Active(active)) = flows.get_mut(&flow) else {
            return RelayOutput::default();
        };
        let ActiveFlow {
            info,
            sealer,
            data,
            reverse,
            delivered,
            ..
        } = &mut **active;
        let gathers = if is_reverse { reverse } else { data };
        let Some(gather) = gathers.get_mut(&seq) else {
            return RelayOutput::default();
        };
        let d = info.d as usize;
        let mut out = RelayOutput::default();

        // Destination delivery (forward direction only). The d InfoSlice
        // views are materialized once per *message*, never per packet;
        // the flow-level replay guard enforces at-most-once even after
        // this gather's state has been reaped.
        if info.receiver && !is_reverse && !gather.delivered && delivered.contains(seq) {
            // A retransmission completed a fresh gather for a seq the
            // guard already delivered (its tombstone was reaped): the
            // sender is retrying because an ack was lost.
            out.replayed.push((flow, seq));
        }
        if info.receiver
            && !is_reverse
            && !gather.delivered
            && !delivered.contains(seq)
            && gather.slices.len() >= d
        {
            let bare: Vec<InfoSlice> = gather
                .slices
                .iter()
                .filter_map(|b| InfoSlice::from_bytes(d, b.len() - d, b))
                // lint: allow(hot-path) — destination delivery: d slice views built once per *delivered message*, not per packet.
                .collect();
            if let Ok(sealed) = coder::decode(&bare, d) {
                if let Ok(plaintext) = sealer.open_owned(sealed) {
                    gather.delivered = true;
                    delivered.insert(seq);
                    stats.messages_received += 1;
                    out.received.push(ReceivedData {
                        flow,
                        seq,
                        plaintext,
                    });
                }
            }
        }

        if gather.flushed {
            return out;
        }
        gather.flushed = true;
        let origins = std::mem::take(&mut gather.origins);
        let slices = std::mem::take(&mut gather.slices);
        if slices.is_empty() {
            return out;
        }

        // Next hops: children forward, parents reverse.
        let next_hops: &[(OverlayAddr, FlowId)] = if is_reverse {
            &info.parents
        } else {
            &info.children
        };
        if next_hops.is_empty() {
            return out;
        }

        // The accumulate-side consistency check admits one coded shape
        // per gather; the recombine kernels below rely on it.
        debug_assert!(
            slices.iter().all(|s| s.len() == slices[0].len()),
            "gather slices drifted from a single coded shape"
        );
        let block_len = slices[0].len() - d;
        let slot_len = d + block_len + 4;
        // Build every outgoing packet first, filling piped slots in
        // place and remembering which slots still need a fresh
        // combination; those are then coded together through one fused
        // multi-output recombine (each gathered slice is loaded once and
        // feeds all pending accumulators, instead of one independent
        // axpy sweep per outgoing packet). Coefficient draws stay
        // output-major in hop order, so the wire bytes are identical to
        // the old per-hop `recombine_into` loop.
        let mut builders: Vec<PacketBuilder> = Vec::with_capacity(next_hops.len());
        scratch_regen.clear();
        for (j, &(_, next_flow)) in next_hops.iter().enumerate() {
            let mut builder = PacketBuilder::new(PacketHeader {
                kind: PacketKind::Data,
                flow_id: next_flow,
                seq,
                d: info.d,
                slot_count: 1,
                slot_len: slot_len as u16,
            });
            let slot = builder.slot();
            // Static data-map: pipe the designated parent's slice if it
            // survived; otherwise (or in Recode mode / on the reverse
            // path, §4.4.1 applied continuously, which also defeats
            // pattern tracking, §9.4(a)) code a fresh random combination
            // of everything gathered straight into the outgoing slot.
            let picked = if info.recode || is_reverse {
                None
            } else {
                info.data_map
                    .get(j)
                    .and_then(|&p| info.parents.get(p as usize))
                    .and_then(|&(want, _)| origins.iter().position(|&o| o == want))
            };
            match picked {
                Some(i) => slot[..d + block_len].copy_from_slice(&slices[i]),
                None => scratch_regen.push(j),
            }
            builders.push(builder);
        }
        if !scratch_regen.is_empty() {
            let mut pending = scratch_regen.iter().copied().peekable();
            let mut outs: Vec<&mut [u8]> = builders
                .iter_mut()
                .enumerate()
                .filter(|(j, _)| {
                    if pending.peek() == Some(j) {
                        pending.next();
                        true
                    } else {
                        false
                    }
                })
                .map(|(_, b)| &mut b.slot_mut(0)[..d + block_len])
                // lint: allow(hot-path) — borrow list over `builders`; cannot outlive this call, ≤ d′ entries per flushed message.
                .collect();
            recombine::recombine_multi_into(&slices, rng, &mut outs);
        }
        out.sends.reserve(next_hops.len());
        for (mut builder, &(to_addr, _)) in builders.into_iter().zip(next_hops.iter()) {
            crc::write_crc(builder.slot_mut(0));
            out.sends.push(SendInstr {
                from: *addr,
                to: to_addr,
                packet: builder.build(),
            });
        }
        stats.packets_out += out.sends.len() as u64;
        out
    }

    /// Send application data back toward the source on the reverse path
    /// (§4.3.7). Only meaningful on a flow where this node is the
    /// receiver.
    ///
    /// Returns `None` if the flow is unknown, not established, or this
    /// node is not its destination.
    pub fn send_reverse(
        &mut self,
        now: Tick,
        flow: FlowId,
        seq: u32,
        plaintext: &[u8],
    ) -> Option<Vec<SendInstr>> {
        let RelayShard {
            flows,
            stats,
            rng,
            addr,
            scratch_seal,
            ..
        } = self;
        let Some(FlowState::Active(active)) = flows.get_mut(&flow) else {
            return None;
        };
        if !active.info.receiver {
            return None;
        }
        active.last_activity = now;
        let info = &active.info;
        let d = info.d as usize;
        let dp = info.d_prime as usize;
        // Cached subkeys + midstates, sealed into the shard's scratch
        // buffer — the steady-state reverse send allocates nothing for
        // the sealed message.
        active.sealer.seal_into(plaintext, scratch_seal, rng);
        let coded = coder::encode(scratch_seal, d, dp, rng);
        let slot_len = d + coded.block_len + 4;
        let mut sends = Vec::with_capacity(info.parents.len());
        for (k, &(parent_addr, parent_rev_flow)) in info.parents.iter().enumerate() {
            let mut builder = PacketBuilder::new(PacketHeader {
                kind: PacketKind::Data,
                flow_id: parent_rev_flow,
                seq,
                d: info.d,
                slot_count: 1,
                slot_len: slot_len as u16,
            });
            let slot = builder.slot();
            let slice = &coded.slices[k % coded.slices.len()];
            slot[..d].copy_from_slice(&slice.coeffs);
            slot[d..d + coded.block_len].copy_from_slice(&slice.payload);
            crc::write_crc(slot);
            sends.push(SendInstr {
                from: *addr,
                to: parent_addr,
                packet: builder.build(),
            });
        }
        stats.packets_out += sends.len() as u64;
        Some(sends)
    }
}

/// The classic single-shard relay node: one `&mut self` state machine
/// per overlay node, handling any number of concurrent flows. This is a
/// zero-overhead facade over one [`RelayShard`] — the packet path is a
/// direct delegation with no routing, no locking and no atomics — kept
/// for tests, the deterministic simulators and the non-sharded daemon.
/// Use [`crate::shard::ShardedRelay`] to spread the same engine over
/// multiple cores.
pub struct RelayNode {
    shard: RelayShard,
}

impl RelayNode {
    /// Create a relay for `addr` with a deterministic RNG seed.
    pub fn new(addr: OverlayAddr, seed: u64) -> Self {
        Self::with_config(addr, seed, RelayConfig::default())
    }

    /// Create with explicit configuration.
    pub fn with_config(addr: OverlayAddr, seed: u64, config: RelayConfig) -> Self {
        RelayNode {
            shard: RelayShard::new(
                addr,
                seed,
                config,
                0,
                FlowRouter::new(1),
                Arc::new(RelayStatsAtomic::default()),
            ),
        }
    }

    /// This node's address.
    pub fn addr(&self) -> OverlayAddr {
        self.shard.addr()
    }

    /// Counters.
    pub fn stats(&self) -> RelayStats {
        self.shard.stats()
    }

    /// Fold counters accrued since the last publish into the node's
    /// shared atomic stats (see [`RelayNode::shared_stats`]).
    pub fn publish_stats(&mut self) {
        self.shard.publish_stats();
    }

    /// The atomically readable mirror of this node's stats: lets a
    /// driver observe the relay after moving it into a daemon task. The
    /// I/O layer also counts wire-garbage here.
    pub fn shared_stats(&self) -> Arc<RelayStatsAtomic> {
        self.shard.shared_stats()
    }

    /// Number of live flows in the table.
    pub fn flow_count(&self) -> usize {
        self.shard.flow_count()
    }

    /// Number of pending timer-wheel entries (tests and diagnostics).
    pub fn pending_deadlines(&self) -> usize {
        self.shard.pending_deadlines()
    }

    /// The decoded info of an established flow, if any.
    pub fn flow_info(&self, flow: FlowId) -> Option<&NodeInfo> {
        self.shard.flow_info(flow)
    }

    /// Feed one packet into the state machine.
    pub fn handle_packet(&mut self, now: Tick, from: OverlayAddr, packet: &Packet) -> RelayOutput {
        self.shard.handle_packet(now, from, packet)
    }

    /// Drive timeouts; see [`RelayShard::poll`].
    pub fn poll(&mut self, now: Tick) -> RelayOutput {
        self.shard.poll(now)
    }

    /// Send application data back toward the source; see
    /// [`RelayShard::send_reverse`].
    pub fn send_reverse(
        &mut self,
        now: Tick,
        flow: FlowId,
        seq: u32,
        plaintext: &[u8],
    ) -> Option<Vec<SendInstr>> {
        self.shard.send_reverse(now, flow, seq, plaintext)
    }

    /// Split into the underlying shard, its router and its shared stats
    /// (the async daemon moves the shard into a worker task and keeps
    /// the other two).
    pub fn into_parts(self) -> (RelayShard, FlowRouter, Arc<RelayStatsAtomic>) {
        let router = self.shard.router.clone();
        let shared = self.shard.shared_stats();
        (self.shard, router, shared)
    }
}

/// Parse a clean (CRC-terminated) slot into a slice; `None` for padding
/// or corruption.
fn parse_clean_slot(d: usize, block_len: usize, slot: &[u8]) -> Option<InfoSlice> {
    let payload = crc::check_crc(slot)?;
    InfoSlice::from_bytes(d, block_len, payload)
}

/// FNV-1a over a byte string — the cheap fingerprint behind the per-flow
/// FLOW_FAILED dedup (collisions only delay a duplicate report's drop).
fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `counters()` must enumerate every field exactly once: the
    /// exhaustive destructuring below fails to compile when a field is
    /// added without extending the array, and the value checks catch a
    /// name wired to the wrong field.
    #[test]
    fn relay_counters_enumerate_every_field() {
        let stats = RelayStats {
            packets_in: 1,
            packets_out: 2,
            flows_established: 3,
            setup_failures: 4,
            messages_received: 5,
            drops: 6,
            flows_evicted: 7,
            garbage: 8,
            parents_lost: 9,
            flows_repaired: 10,
        };
        let names: Vec<&str> = stats.counters().iter().map(|(n, _)| *n).collect();
        let values: Vec<u64> = stats.counters().iter().map(|(_, v)| *v).collect();
        assert_eq!(values, (1..=10).collect::<Vec<u64>>());
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "counter names must be unique");
    }

    #[test]
    fn unknown_data_flow_dropped() {
        let mut relay = RelayNode::new(OverlayAddr(1), 7);
        let packet = Packet::new(
            PacketHeader {
                kind: PacketKind::Data,
                flow_id: FlowId(99),
                seq: 0,
                d: 2,
                slot_count: 1,
                slot_len: 10,
            },
            vec![vec![0u8; 10]],
        );
        let out = relay.handle_packet(Tick(0), OverlayAddr(2), &packet);
        assert!(out.sends.is_empty());
        assert_eq!(relay.stats().drops, 1);
    }

    #[test]
    fn flow_limit_enforced() {
        let config = RelayConfig {
            max_flows: 2,
            ..RelayConfig::default()
        };
        let mut relay = RelayNode::with_config(OverlayAddr(1), 7, config);
        for i in 0..5u64 {
            let packet = Packet::new(
                PacketHeader {
                    kind: PacketKind::Setup,
                    flow_id: FlowId(100 + i),
                    seq: 0,
                    d: 2,
                    slot_count: 2,
                    slot_len: 16,
                },
                vec![vec![0u8; 16], vec![0u8; 16]],
            );
            relay.handle_packet(Tick(0), OverlayAddr(2), &packet);
        }
        assert_eq!(relay.flow_count(), 2);
        assert_eq!(relay.stats().drops, 3);
    }

    #[test]
    fn garbage_setup_flow_dies_on_timeout() {
        let mut relay = RelayNode::new(OverlayAddr(1), 7);
        // Two garbage packets from two "parents": enough to try decoding,
        // which fails (slots are noise, CRC rejects them all).
        for p in 0..2u64 {
            let packet = Packet::new(
                PacketHeader {
                    kind: PacketKind::Setup,
                    flow_id: FlowId(5),
                    seq: 0,
                    d: 2,
                    slot_count: 2,
                    slot_len: 20,
                },
                vec![vec![p as u8; 20], vec![p as u8; 20]],
            );
            relay.handle_packet(Tick(0), OverlayAddr(10 + p), &packet);
        }
        // Nothing yet (decode failed quietly, waiting for more slices).
        assert_eq!(relay.stats().setup_failures, 0);
        // Timeout forces the decision.
        relay.poll(Tick(10_000));
        assert_eq!(relay.stats().setup_failures, 1);
    }

    #[test]
    fn gc_evicts_stale_flows() {
        let config = RelayConfig {
            flow_ttl_ms: 1_000,
            ..RelayConfig::default()
        };
        let mut relay = RelayNode::with_config(OverlayAddr(1), 7, config);
        let packet = Packet::new(
            PacketHeader {
                kind: PacketKind::Setup,
                flow_id: FlowId(5),
                seq: 0,
                d: 2,
                slot_count: 2,
                slot_len: 20,
            },
            vec![vec![1u8; 20], vec![2u8; 20]],
        );
        relay.handle_packet(Tick(0), OverlayAddr(2), &packet);
        assert_eq!(relay.flow_count(), 1);
        relay.poll(Tick(5_000));
        assert_eq!(relay.flow_count(), 0);
        assert_eq!(relay.stats().flows_evicted, 1);
    }

    #[test]
    fn mismatched_setup_shape_dropped() {
        let mut relay = RelayNode::new(OverlayAddr(1), 7);
        let shape = |slot_len: u16, fill: u8| {
            Packet::new(
                PacketHeader {
                    kind: PacketKind::Setup,
                    flow_id: FlowId(5),
                    seq: 0,
                    d: 2,
                    slot_count: 2,
                    slot_len,
                },
                vec![vec![fill; slot_len as usize]; 2],
            )
        };
        relay.handle_packet(Tick(0), OverlayAddr(2), &shape(20, 1));
        relay.handle_packet(Tick(0), OverlayAddr(3), &shape(24, 2));
        // The second packet's geometry disagrees: dropped, not gathered.
        assert_eq!(relay.stats().drops, 1);
    }
}
