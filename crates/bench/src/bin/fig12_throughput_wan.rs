//! Fig. 12: per-flow throughput vs path length on the wide-area network
//! (PlanetLab substitute) — information slicing (d = 2) vs onion routing.
//!
//! A second table reruns the same L sweep over the *real* UDP datagram
//! transport (paced, congestion-controlled, with injected loss) against
//! real TCP: the WAN story on live sockets instead of the emulated hub.

use std::time::Duration;

use slicing_bench::{banner, RunOpts, Table};
use slicing_core::{DestPlacement, GraphParams};
use slicing_overlay::experiment::{
    run_onion_transfer, run_session_transfer, run_slicing_transfer, Transport,
};
use slicing_overlay::{SessionTransferConfig, TransferConfig, UdpFaults};
use slicing_sim::NetProfile;

fn main() {
    let opts = RunOpts::from_args();
    let messages = opts.trials(40);
    banner(
        "Figure 12 — throughput vs path length, WAN (PlanetLab profile)",
        "d=2, 1500B packets, L=2..5, world-spanning RTTs + loaded hosts",
        "throughput ~Mb/s scale; slicing beats onion at every L",
    );
    let rt = tokio::runtime::Builder::new_multi_thread()
        .worker_threads(4)
        .enable_all()
        .build()
        .expect("tokio runtime");
    let mut table = Table::new(&["L", "slicing_mbps", "onion_mbps"]);
    for l in 2..=5usize {
        let cfg = TransferConfig {
            params: GraphParams::new(l, 2).with_dest_placement(DestPlacement::LastStage),
            transport: Transport::Emulated(NetProfile::planetlab()),
            messages,
            payload_len: 1400,
            seed: opts.seed + l as u64,
            timeout: Duration::from_secs(if opts.quick { 25 } else { 180 }),
            relay_shards: 1,
            relay_config: Default::default(),
        };
        let slicing = rt.block_on(run_slicing_transfer(&cfg));
        let onion = rt.block_on(run_onion_transfer(&cfg));
        println!(
            "row: L={l} slicing={:.4} Mb/s ({} msgs) onion={:.4} Mb/s ({} msgs)",
            slicing.throughput_mbps,
            slicing.messages_delivered,
            onion.throughput_mbps,
            onion.messages_delivered
        );
        table.row(&[l as f64, slicing.throughput_mbps, onion.throughput_mbps]);
    }
    table.print();

    // Rerun over real datagrams: slicing on the paced UDP transport vs
    // slicing on real TCP, same classic per-message harness as above.
    // The lossy column rides the session layer instead (retransmit
    // window + d′ = 3 path redundancy) because the classic harness has
    // no reliability plane — a lost message would just stall it to the
    // timeout, which measures the timeout, not the transport. Loopback
    // has no WAN RTT, so absolute numbers are higher than above; the
    // UDP-vs-TCP comparison at each L is the point.
    println!();
    println!("rerun over real sockets (UDP paced/cc vs TCP, loopback):");
    let mut real = Table::new(&["L", "udp_mbps", "tcp_mbps", "udp_5pct_session_mbps"]);
    for l in 2..=5usize {
        let cfg = |transport: Transport, salt: u64| TransferConfig {
            params: GraphParams::new(l, 2).with_dest_placement(DestPlacement::LastStage),
            transport,
            messages,
            payload_len: 1400,
            seed: opts.seed + l as u64 + salt,
            timeout: Duration::from_secs(if opts.quick { 25 } else { 180 }),
            relay_shards: 1,
            relay_config: Default::default(),
        };
        let udp = rt.block_on(run_slicing_transfer(&cfg(
            Transport::Udp(UdpFaults::default()),
            1000,
        )));
        let tcp = rt.block_on(run_slicing_transfer(&cfg(Transport::Tcp, 3000)));
        let lossy_cfg = SessionTransferConfig {
            params: GraphParams::new(l, 2)
                .with_paths(3)
                .with_dest_placement(DestPlacement::LastStage),
            transport: Transport::Udp(UdpFaults {
                loss: 0.05,
                ..UdpFaults::default()
            }),
            messages: 1,
            payload_len: messages * 1400,
            relay_shards: 1,
            session_shards: 1,
            seed: opts.seed + l as u64 + 2000,
            timeout: Duration::from_secs(if opts.quick { 60 } else { 180 }),
            ..SessionTransferConfig::default()
        };
        let lossy = rt.block_on(run_session_transfer(&lossy_cfg));
        let lossy_mbps = if lossy.elapsed_ms > 0 {
            lossy.payload_bytes as f64 * 8.0 / (lossy.elapsed_ms as f64 / 1000.0) / 1e6
        } else {
            0.0
        };
        println!(
            "row: L={l} udp={:.4} Mb/s ({} msgs) tcp={:.4} Mb/s ({} msgs) \
             udp@5%(session)={lossy_mbps:.4} Mb/s ({} msgs, {} retx)",
            udp.throughput_mbps,
            udp.messages_delivered,
            tcp.throughput_mbps,
            tcp.messages_delivered,
            lossy.messages_delivered,
            lossy.retransmits
        );
        real.row(&[l as f64, udp.throughput_mbps, tcp.throughput_mbps, lossy_mbps]);
    }
    real.print();
}
