//! Vendored, dependency-free subset of the `tokio` API.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a small self-contained async runtime covering exactly what
//! the workspace's overlay layer uses:
//!
//! * a global multi-threaded executor ([`spawn`], [`runtime::block_on`]),
//! * a timer thread ([`time::sleep`], [`time::sleep_until`],
//!   [`time::interval`]),
//! * async mpsc channels ([`sync::mpsc`]),
//! * nonblocking loopback TCP ([`net::TcpListener`], [`net::TcpStream`])
//!   and UDP ([`net::UdpSocket`], with `sendmmsg`/`recvmmsg`-shaped
//!   batch calls) polled on a 1 ms timer tick,
//! * [`select!`] / [`pin!`] macros and the `#[tokio::test]` /
//!   `#[tokio::main]` attributes.
//!
//! It is built entirely on `std` (`std::task::Wake`, nonblocking
//! sockets, a binary-heap timer) with no unsafe code. Throughput is more
//! than sufficient for the workspace's loopback experiments; a real
//! deployment would swap in upstream tokio unchanged, since the API
//! surface is identical.

#![forbid(unsafe_code)]

mod executor;

pub mod io;
pub mod net;
pub mod runtime;
pub mod sync;
pub mod task;
pub mod time;

pub use task::spawn;

// `#[tokio::test]` / `#[tokio::main]` resolve through these re-exports.
pub use tokio_macros::{main, test};

#[doc(hidden)]
pub mod macros {
    //! Support helpers for the [`crate::select!`] macro expansion.

    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    /// Poll an optionally-disabled `Unpin` branch future; on readiness
    /// the value is parked in `slot` and the branch index is reported.
    pub fn poll_branch<F: Future + Unpin>(
        fut: &mut Option<F>,
        slot: &mut Option<F::Output>,
        index: usize,
        cx: &mut Context<'_>,
    ) -> Option<Poll<usize>> {
        if let Some(f) = fut.as_mut() {
            if let Poll::Ready(v) = Pin::new(f).poll(cx) {
                *slot = Some(v);
                *fut = None;
                return Some(Poll::Ready(index));
            }
        }
        None
    }
}

/// Pin one or more variables to the stack.
///
/// All futures in this vendored runtime are `Unpin`, so this is a plain
/// shadowing rebind through `Pin::new`.
#[macro_export]
macro_rules! pin {
    ($($x:ident),+ $(,)?) => {
        $(
            let mut $x = $x;
            #[allow(unused_mut)]
            let mut $x = ::std::pin::Pin::new(&mut $x);
        )+
    };
}

/// Wait on multiple futures, running the body of whichever finishes
/// first. Supports 1–6 branches, match-arm style bodies (block bodies
/// need no separating comma), and per-branch `, if guard` clauses.
/// Branches are polled in declaration order (biased), which is
/// indistinguishable from tokio's randomized order for this workspace's
/// uses. Branch futures must be `Unpin`, which every future in this
/// vendored runtime is.
#[macro_export]
macro_rules! select {
    ($($tokens:tt)+) => {
        $crate::__select_normalize!(@norm [] $($tokens)+)
    };
}

/// First pass over `select!` input: rewrite every branch into the
/// canonical `{pat} {future} {guard} {body}` group list, then dispatch
/// to [`__select_expand`].
#[doc(hidden)]
#[macro_export]
macro_rules! __select_normalize {
    // Done: expand the accumulated branches.
    (@norm [$($acc:tt)*]) => {
        $crate::__select_expand!($($acc)*)
    };
    // Skip separating commas between branches.
    (@norm [$($acc:tt)*] , $($rest:tt)*) => {
        $crate::__select_normalize!(@norm [$($acc)*] $($rest)*)
    };
    // Guarded branch, block body.
    (@norm [$($acc:tt)*] $p:pat = $f:expr, if $g:expr => $b:block $($rest:tt)*) => {
        $crate::__select_normalize!(@norm [$($acc)* [{$p} {$f} {$g} {$b}]] $($rest)*)
    };
    // Guarded branch, expression body (comma-terminated or last).
    (@norm [$($acc:tt)*] $p:pat = $f:expr, if $g:expr => $b:expr, $($rest:tt)*) => {
        $crate::__select_normalize!(@norm [$($acc)* [{$p} {$f} {$g} {$b}]] $($rest)*)
    };
    (@norm [$($acc:tt)*] $p:pat = $f:expr, if $g:expr => $b:expr) => {
        $crate::__select_normalize!(@norm [$($acc)* [{$p} {$f} {$g} {$b}]])
    };
    // Unguarded branch, block body.
    (@norm [$($acc:tt)*] $p:pat = $f:expr => $b:block $($rest:tt)*) => {
        $crate::__select_normalize!(@norm [$($acc)* [{$p} {$f} {true} {$b}]] $($rest)*)
    };
    // Unguarded branch, expression body (comma-terminated or last).
    (@norm [$($acc:tt)*] $p:pat = $f:expr => $b:expr, $($rest:tt)*) => {
        $crate::__select_normalize!(@norm [$($acc)* [{$p} {$f} {true} {$b}]] $($rest)*)
    };
    (@norm [$($acc:tt)*] $p:pat = $f:expr => $b:expr) => {
        $crate::__select_normalize!(@norm [$($acc)* [{$p} {$f} {true} {$b}]])
    };
}

/// Second pass: pair each normalized branch with a future slot ident, a
/// result slot ident and a numeric index drawn from fixed pools (up to
/// 8 branches), then emit one `poll_fn` over all of them.
#[doc(hidden)]
#[macro_export]
macro_rules! __select_expand {
    ($($branch:tt)+) => {
        $crate::__select_emit!(
            @pair
            ($($branch)+)
            (__sel_f1 __sel_f2 __sel_f3 __sel_f4 __sel_f5 __sel_f6 __sel_f7 __sel_f8)
            (__sel_r1 __sel_r2 __sel_r3 __sel_r4 __sel_r5 __sel_r6 __sel_r7 __sel_r8)
            (0 1 2 3 4 5 6 7)
            @paired
        )
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __select_emit {
    // Pair off branches with idents/indices, accumulating after @paired.
    (@pair ([{$p:pat} {$f:expr} {$g:expr} {$b:expr}] $($branch:tt)*)
     ($fid1:ident $($fid:ident)*) ($rid1:ident $($rid:ident)*) ($idx1:tt $($idx:tt)*)
     @paired $($done:tt)*) => {
        $crate::__select_emit!(
            @pair
            ($($branch)*)
            ($($fid)*) ($($rid)*) ($($idx)*)
            @paired $($done)* [{$p} {$f} {$g} {$b} {$fid1} {$rid1} {$idx1}]
        )
    };
    // All branches paired: emit the block.
    (@pair () ($($fid:ident)*) ($($rid:ident)*) ($($idx:tt)*)
     @paired $([{$p:pat} {$f:expr} {$g:expr} {$b:expr} {$bf:ident} {$br:ident} {$bi:tt}])+) => {{
        $(
            let mut $bf = if $g {
                ::std::option::Option::Some($f)
            } else {
                ::std::option::Option::None
            };
            let mut $br = ::std::option::Option::None;
        )+
        let __sel_which = ::std::future::poll_fn(|__sel_cx| {
            $(
                if let ::std::option::Option::Some(ready) =
                    $crate::macros::poll_branch(&mut $bf, &mut $br, $bi, __sel_cx)
                {
                    return ready;
                }
            )+
            ::std::task::Poll::Pending
        })
        .await;
        match __sel_which {
            $(
                i if i == $bi => {
                    #[allow(clippy::let_unit_value)]
                    let $p = $br.take().expect("select! result slot");
                    $b
                }
            )+
            _ => unreachable!("select! reported unknown branch"),
        }
    }};
}
