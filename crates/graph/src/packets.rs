//! Emission of the setup packets the source-stage nodes send (§4.3.4).
//!
//! Each pseudo-source sends one packet to each stage-1 relay. Slot 0 is
//! the relay's own info slice (clean); slot `s ≥ 1` carries the info slice
//! of the unique stage-`(1+s)` target routed through this
//! (pseudo-source, stage-1 relay) edge, wrapped in the per-hop transform
//! chain of the relays that will forward it (§9.4(a)). Every slot carries
//! a trailing CRC-32 so the final consumer can tell real slices from the
//! random padding that replaces slices lost to failed parents.

use rand::Rng;

use slicing_codec::transform;
use slicing_codec::InfoSlice;
use slicing_wire::{crc, FlowId, Packet, PacketBuilder, PacketHeader, PacketKind};

use crate::addr::OverlayAddr;
use crate::build::BuiltGraph;

/// One packet to hand to the network: send `packet` from `from` to `to`.
#[derive(Clone, Debug)]
pub struct SendInstr {
    /// Originating address (a pseudo-source for setup packets).
    pub from: OverlayAddr,
    /// Next-hop address.
    pub to: OverlayAddr,
    /// The wire packet.
    pub packet: Packet,
}

impl BuiltGraph {
    /// Slot length of this graph's setup packets
    /// (`d` coefficients + info block + CRC-32).
    pub fn setup_slot_len(&self) -> usize {
        self.params.split + self.info_block_len + 4
    }

    /// Wrap a slice for its journey directly into a packet slot: write
    /// `coeffs ‖ payload`, seal with the CRC, then apply the transform
    /// chain of the relays at stages `1..target_stage` on its path — all
    /// in place.
    ///
    /// # Panics
    /// Panics if `out` is not exactly [`Self::setup_slot_len`] bytes.
    fn wrap_slice_into(&self, target_stage: usize, x: usize, k: usize, out: &mut [u8]) {
        let slice = &self.info_slices[target_stage][x][k];
        let d = slice.coeffs.len();
        assert_eq!(out.len(), d + slice.payload.len() + 4, "slot length");
        out[..d].copy_from_slice(&slice.coeffs);
        out[d..d + slice.payload.len()].copy_from_slice(&slice.payload);
        crc::write_crc(out);
        // Forwarding relays: stages 1..target_stage on this slice's path.
        let chain: Vec<_> = (1..target_stage)
            .map(|m| {
                let holder = self.holders.holder(target_stage, x, k, m);
                self.transforms[m][holder]
            })
            .collect();
        transform::apply_chain(&chain, out);
    }

    /// Produce every setup packet (one per pseudo-source → stage-1 relay
    /// edge, `d′²` in total).
    ///
    /// Slots beyond the real ones are filled with fresh random padding.
    pub fn setup_packets<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<SendInstr> {
        let dp = self.params.paths;
        let l_len = self.params.length;
        let slot_len = self.setup_slot_len();
        let mut out = Vec::with_capacity(dp * dp);
        for i in 0..dp {
            for v in 0..dp {
                let mut builder = PacketBuilder::new(PacketHeader {
                    kind: PacketKind::Setup,
                    flow_id: self.flow_ids[1][v],
                    seq: 0,
                    d: self.params.split as u8,
                    slot_count: l_len as u8,
                    slot_len: slot_len as u16,
                });
                // Slot 0: v's own slice, via pseudo-source i.
                let k_own = (0..dp)
                    .find(|&k| self.holders.holder(1, v, k, 0) == i)
                    .expect("own-slice permutation");
                self.wrap_slice_into(1, v, k_own, builder.slot());
                // Slots 1..L-1: one slice per downstream stage.
                for s in 1..l_len {
                    let target_stage = 1 + s;
                    let mut filled = None;
                    for x in 0..dp {
                        for k in 0..dp {
                            if self.holders.holder(target_stage, x, k, 0) == i
                                && self.holders.holder(target_stage, x, k, 1) == v
                            {
                                assert!(filled.is_none(), "balance violated");
                                filled = Some((target_stage, x, k));
                            }
                        }
                    }
                    let (ts, x, k) = filled.expect("balance violated: empty first-hop slot");
                    self.wrap_slice_into(ts, x, k, builder.slot());
                }
                out.push(SendInstr {
                    from: self.stages[0][i],
                    to: self.stages[1][v],
                    packet: builder.build(),
                });
                let _ = rng;
            }
        }
        out
    }

    /// Parse a clean (unwrapped, CRC-checked) slot into an [`InfoSlice`].
    ///
    /// Returns `None` for padding or corrupted slots.
    pub fn parse_slot(d: usize, block_len: usize, slot: &[u8]) -> Option<InfoSlice> {
        let payload = crc::check_crc(slot)?;
        InfoSlice::from_bytes(d, block_len, payload)
    }

    /// The flow id the source must use for forward data packets to
    /// stage-1 relays.
    pub fn stage1_flow_ids(&self) -> Vec<FlowId> {
        self.flow_ids[1].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::params::GraphParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph(l: usize, d: usize, dp: usize) -> BuiltGraph {
        let mut rng = StdRng::seed_from_u64(21);
        let pseudo: Vec<OverlayAddr> = (0..dp as u64).map(|i| OverlayAddr(10_000 + i)).collect();
        let candidates: Vec<OverlayAddr> =
            (0..(l * dp + 5) as u64).map(|i| OverlayAddr(20_000 + i)).collect();
        build(
            GraphParams::new(l, d).with_paths(dp),
            &pseudo,
            &candidates,
            OverlayAddr(1),
            &mut rng,
        )
        .unwrap()
    }

    #[test]
    fn emits_dp_squared_packets() {
        let g = graph(4, 2, 3);
        let mut rng = StdRng::seed_from_u64(1);
        let packets = g.setup_packets(&mut rng);
        assert_eq!(packets.len(), 9);
        for p in &packets {
            assert_eq!(p.packet.header.slot_count, 4);
            assert_eq!(p.packet.header.kind, PacketKind::Setup);
            assert_eq!(p.packet.header.slot_len as usize, g.setup_slot_len());
        }
    }

    #[test]
    fn all_packets_same_size() {
        let g = graph(5, 2, 2);
        let mut rng = StdRng::seed_from_u64(2);
        let packets = g.setup_packets(&mut rng);
        let len = packets[0].packet.encode().len();
        assert!(packets.iter().all(|p| p.packet.encode().len() == len));
    }

    #[test]
    fn stage1_slot0_is_clean_and_decodable() {
        let g = graph(4, 2, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let packets = g.setup_packets(&mut rng);
        // Gather the slot-0 slices per stage-1 relay, decode their info.
        for v in 0..3usize {
            let relay_addr = g.stages[1][v];
            let slices: Vec<_> = packets
                .iter()
                .filter(|p| p.to == relay_addr)
                .map(|p| {
                    BuiltGraph::parse_slot(2, g.info_block_len, p.packet.slot(0))
                        .expect("slot 0 must be clean")
                })
                .collect();
            assert_eq!(slices.len(), 3);
            let bytes = slicing_codec::decode(&slices, 2).unwrap();
            let info = crate::info::NodeInfo::decode(&bytes).unwrap();
            assert_eq!(&info, &g.infos[1][v]);
        }
    }

    #[test]
    fn downstream_slots_are_wrapped() {
        // Slices for stage >= 2 targets must NOT parse before unwrapping
        // (the CRC check fails on wrapped bytes).
        let g = graph(4, 2, 2);
        let mut rng = StdRng::seed_from_u64(4);
        let packets = g.setup_packets(&mut rng);
        let mut wrapped = 0;
        for p in &packets {
            for slot in p.packet.slots().skip(1) {
                if BuiltGraph::parse_slot(2, g.info_block_len, slot).is_none() {
                    wrapped += 1;
                }
            }
        }
        // All downstream slots are transform-wrapped.
        assert_eq!(wrapped, packets.len() * 3);
    }

    #[test]
    fn wrapped_slice_unwraps_along_path() {
        let g = graph(4, 2, 2);
        // Take the stage-3 target (x=0, k=0): wrap then manually strip the
        // relays' transforms in path order; must parse and contribute to
        // decoding at the end.
        let (l, x, k) = (3usize, 0usize, 0usize);
        let mut bytes = vec![0u8; g.setup_slot_len()];
        g.wrap_slice_into(l, x, k, &mut bytes);
        for m in 1..l {
            let holder = g.holders.holder(l, x, k, m);
            g.transforms[m][holder].unapply(&mut bytes);
        }
        let slice = BuiltGraph::parse_slot(2, g.info_block_len, &bytes).unwrap();
        assert_eq!(&slice, &g.info_slices[l][x][k]);
    }
}
