//! The entropy anonymity metric (Eq. 5, after [25, 11]):
//! `Anonymity = H(x) / log N`.

/// A group of identically-likely candidates: `count` nodes each carrying
/// probability `p` (before normalization).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProbabilityGroup {
    /// Number of nodes in the group.
    pub count: u64,
    /// Per-node probability mass (need not be normalized across groups).
    pub p: f64,
}

/// Compute `H(x)/log N` from probability groups.
///
/// The groups are normalized first (the Appendix-A assignment for the
/// source, Eq. 8, does not sum to exactly 1 when the source stage holds
/// more than one pseudo-source; normalizing keeps the entropy
/// well-defined while preserving the paper's shape).
///
/// Returns a value in `[0, 1]`; `N` is the total network size used for
/// `H_max = log N`.
pub fn anonymity_from_groups(groups: &[ProbabilityGroup], n: u64) -> f64 {
    assert!(n >= 2, "need at least two nodes for a meaningful metric");
    let total: f64 = groups
        .iter()
        .map(|g| g.count as f64 * g.p.max(0.0))
        .sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut h = 0.0;
    for g in groups {
        if g.count == 0 || g.p <= 0.0 {
            continue;
        }
        let p = g.p / total;
        h -= g.count as f64 * p * p.ln();
    }
    let hmax = (n as f64).ln();
    (h / hmax).clamp(0.0, 1.0)
}

/// Convenience: anonymity of a uniform distribution over `m` of `n`
/// nodes (`log m / log n`).
pub fn uniform_anonymity(m: u64, n: u64) -> f64 {
    if m <= 1 {
        return 0.0;
    }
    ((m as f64).ln() / (n as f64).ln()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_anonymity_is_one() {
        // Uniform over all N nodes.
        let groups = [ProbabilityGroup {
            count: 10_000,
            p: 1.0 / 10_000.0,
        }];
        let a = anonymity_from_groups(&groups, 10_000);
        assert!((a - 1.0).abs() < 1e-12);
    }

    #[test]
    fn certainty_is_zero() {
        let groups = [ProbabilityGroup { count: 1, p: 1.0 }];
        assert_eq!(anonymity_from_groups(&groups, 10_000), 0.0);
    }

    #[test]
    fn normalization_applied() {
        // Unnormalized masses must give the same result as normalized.
        let a = anonymity_from_groups(
            &[
                ProbabilityGroup { count: 10, p: 0.5 },
                ProbabilityGroup { count: 90, p: 0.1 },
            ],
            1000,
        );
        let b = anonymity_from_groups(
            &[
                ProbabilityGroup { count: 10, p: 5.0 },
                ProbabilityGroup { count: 90, p: 1.0 },
            ],
            1000,
        );
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn concentrating_mass_reduces_anonymity() {
        let spread = anonymity_from_groups(
            &[ProbabilityGroup {
                count: 1000,
                p: 1e-3,
            }],
            10_000,
        );
        let peaked = anonymity_from_groups(
            &[
                ProbabilityGroup { count: 1, p: 0.9 },
                ProbabilityGroup {
                    count: 999,
                    p: 0.1 / 999.0,
                },
            ],
            10_000,
        );
        assert!(peaked < spread);
    }

    #[test]
    fn uniform_anonymity_values() {
        assert_eq!(uniform_anonymity(1, 100), 0.0);
        assert!((uniform_anonymity(100, 100) - 1.0).abs() < 1e-12);
        let half = uniform_anonymity(10, 100);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn anonymity_half_means_half_the_bits() {
        // Eq. 5 commentary: anonymity 0.5 = attacker still missing half
        // the information. Uniform over sqrt(N) gives exactly 0.5.
        let a = uniform_anonymity(100, 10_000);
        assert!((a - 0.5).abs() < 1e-12);
    }
}
