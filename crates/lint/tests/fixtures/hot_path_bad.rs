//! Fixture: a marked hot-path region with one of each violation class.

pub struct Shard {
    scratch: Vec<u8>,
}

impl Shard {
    // lint: hot-path
    pub fn handle(&mut self, input: Option<u32>) -> u32 {
        let grown: Vec<u8> = Vec::new();
        let label = format!("flow");
        let copied = self.scratch.clone();
        let value = input.unwrap();
        assert!(value > 0);
        debug_assert!(value > 0); // explicitly fine: compiled out in release
        let _ = (grown, label, copied);
        value
    }

    pub fn cold(&mut self) -> Vec<u8> {
        // Outside any marked region: allocation is fine here.
        self.scratch.clone()
    }
}
