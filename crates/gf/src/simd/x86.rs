//! x86_64 kernels: SSSE3/AVX2 split-nibble table multiplies and
//! PCLMULQDQ carry-less dot products.
//!
//! Every function in this module is a **safe** wrapper around
//! `#[target_feature]` inner loops; the wrappers pick the widest
//! available engine from [`crate::simd::caps`] (detected once at
//! startup) and finish odd-length tails with the scalar table row, so
//! callers never see alignment or length restrictions. The `unsafe` here
//! is confined to `std::arch` intrinsics plus byte reinterpretation of
//! `#[repr(transparent)]` [`Gf65536`] slices, all on the little-endian
//! x86_64 memory model the intrinsics assume.
//!
//! Three instruction families do the work:
//!
//! * `PSHUFB` (`_mm_shuffle_epi8` / `_mm256_shuffle_epi8`) evaluates the
//!   16-entry split-nibble tables of [`super::tables`] across 16 or 32
//!   lanes per step — the ISA-L-style constant-coefficient multiply.
//! * `PCLMULQDQ` computes dot products of *varying* × *varying*
//!   operands (no fixed coefficient to build a table for): both inputs
//!   are widened to 2× lanes, one is byte-reversed per group so lane
//!   products land in non-overlapping bit slots, the unreduced carry-less
//!   products are XOR-folded in-register, and one polynomial reduction
//!   at the end maps back into the field.
//! * For GF(2¹⁶), data arrives interleaved (`u16` little-endian); the
//!   engines deinterleave lo/hi byte planes in-register with a shuffle +
//!   64-bit unpack, apply four nibble tables per output plane, and
//!   re-interleave before the store.

use std::arch::x86_64::*;

use crate::bulk;
use crate::gf65536::{self, Gf65536};
use crate::simd::tables::{self, NIB8};

// ---- GF(2⁸) slice transforms ----------------------------------------------

/// Dataflow selector for the const-generic transform engines. Each
/// kernel's per-block recipe, with `m(x)` the split-nibble multiply:
/// axpy `d ^= m(o)`, scale-into `d = m(o)`, scale `d = m(d)`,
/// fused-forward `d = m(d) ^ o`, fused-inverse `d = m(d ^ o)`.
const OP_AXPY: u8 = 0;
const OP_MUL_INTO: u8 = 1;
const OP_MUL: u8 = 2;
const OP_MUL_XOR: u8 = 3;
const OP_XOR_MUL: u8 = 4;

/// One 32-lane split-nibble multiply: `m(v) = tlo[v & 0xF] ^ thi[v >> 4]`.
/// Register-only (no memory access), so it is a *safe* target-feature
/// fn: the engines that call it already carry the `avx2` feature.
#[inline]
#[target_feature(enable = "avx2")]
fn mul_block256(tlo: __m256i, thi: __m256i, mask: __m256i, v: __m256i) -> __m256i {
    _mm256_xor_si256(
        _mm256_shuffle_epi8(tlo, _mm256_and_si256(v, mask)),
        _mm256_shuffle_epi8(thi, _mm256_and_si256(_mm256_srli_epi16(v, 4), mask)),
    )
}

/// One 16-lane split-nibble multiply (SSSE3 engine). Register-only and
/// safe, as [`mul_block256`].
#[inline]
#[target_feature(enable = "ssse3")]
fn mul_block128(tlo: __m128i, thi: __m128i, mask: __m128i, v: __m128i) -> __m128i {
    _mm_xor_si128(
        _mm_shuffle_epi8(tlo, _mm_and_si128(v, mask)),
        _mm_shuffle_epi8(thi, _mm_and_si128(_mm_srli_epi16(v, 4), mask)),
    )
}

/// AVX2 transform engine: applies `OP` over 32-byte blocks (64-byte main
/// loop), returns the number of bytes processed. `other` must equal
/// `dst` for the one-operand ops (`OP_MUL`) and may not otherwise alias.
///
/// # Safety
///
/// `dst` and `other` must each be valid for `len` bytes (`dst` for
/// writes); they must not partially overlap (equal is fine); the caller
/// must have verified AVX2 support.
#[target_feature(enable = "avx2")]
unsafe fn transform8_avx2<const OP: u8>(
    dst: *mut u8,
    other: *const u8,
    len: usize,
    tab: &[u8; 32],
) -> usize {
    // SAFETY: per the fn contract, every `dst`/`other` offset below is
    // `< len` and the unaligned load/store intrinsics tolerate any
    // alignment; `tab` is a 32-byte array so `tab + 16` is in bounds.
    unsafe {
        let tlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(tab.as_ptr() as *const __m128i));
        let thi =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(tab.as_ptr().add(16) as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        let mut i = 0usize;
        macro_rules! block {
            ($off:expr) => {{
                let o = $off;
                let r = match OP {
                    OP_AXPY => {
                        let d = _mm256_loadu_si256(dst.add(o) as *const __m256i);
                        let s = _mm256_loadu_si256(other.add(o) as *const __m256i);
                        _mm256_xor_si256(d, mul_block256(tlo, thi, mask, s))
                    }
                    OP_MUL_INTO => {
                        let s = _mm256_loadu_si256(other.add(o) as *const __m256i);
                        mul_block256(tlo, thi, mask, s)
                    }
                    OP_MUL => {
                        let d = _mm256_loadu_si256(dst.add(o) as *const __m256i);
                        mul_block256(tlo, thi, mask, d)
                    }
                    OP_MUL_XOR => {
                        let d = _mm256_loadu_si256(dst.add(o) as *const __m256i);
                        let p = _mm256_loadu_si256(other.add(o) as *const __m256i);
                        _mm256_xor_si256(mul_block256(tlo, thi, mask, d), p)
                    }
                    _ => {
                        let d = _mm256_loadu_si256(dst.add(o) as *const __m256i);
                        let p = _mm256_loadu_si256(other.add(o) as *const __m256i);
                        mul_block256(tlo, thi, mask, _mm256_xor_si256(d, p))
                    }
                };
                _mm256_storeu_si256(dst.add(o) as *mut __m256i, r);
            }};
        }
        while i + 64 <= len {
            block!(i);
            block!(i + 32);
            i += 64;
        }
        if i + 32 <= len {
            block!(i);
            i += 32;
        }
        i
    }
}

/// SSSE3 transform engine: 16-byte blocks (32-byte main loop).
///
/// # Safety
///
/// Same contract as [`transform8_avx2`], with SSSE3 as the required
/// feature.
#[target_feature(enable = "ssse3")]
unsafe fn transform8_ssse3<const OP: u8>(
    dst: *mut u8,
    other: *const u8,
    len: usize,
    tab: &[u8; 32],
) -> usize {
    // SAFETY: as in `transform8_avx2` — offsets stay `< len`, loads and
    // stores are the unaligned variants, `tab` covers 32 bytes.
    unsafe {
        let tlo = _mm_loadu_si128(tab.as_ptr() as *const __m128i);
        let thi = _mm_loadu_si128(tab.as_ptr().add(16) as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let mut i = 0usize;
        macro_rules! block {
            ($off:expr) => {{
                let o = $off;
                let r = match OP {
                    OP_AXPY => {
                        let d = _mm_loadu_si128(dst.add(o) as *const __m128i);
                        let s = _mm_loadu_si128(other.add(o) as *const __m128i);
                        _mm_xor_si128(d, mul_block128(tlo, thi, mask, s))
                    }
                    OP_MUL_INTO => {
                        let s = _mm_loadu_si128(other.add(o) as *const __m128i);
                        mul_block128(tlo, thi, mask, s)
                    }
                    OP_MUL => {
                        let d = _mm_loadu_si128(dst.add(o) as *const __m128i);
                        mul_block128(tlo, thi, mask, d)
                    }
                    OP_MUL_XOR => {
                        let d = _mm_loadu_si128(dst.add(o) as *const __m128i);
                        let p = _mm_loadu_si128(other.add(o) as *const __m128i);
                        _mm_xor_si128(mul_block128(tlo, thi, mask, d), p)
                    }
                    _ => {
                        let d = _mm_loadu_si128(dst.add(o) as *const __m128i);
                        let p = _mm_loadu_si128(other.add(o) as *const __m128i);
                        mul_block128(tlo, thi, mask, _mm_xor_si128(d, p))
                    }
                };
                _mm_storeu_si128(dst.add(o) as *mut __m128i, r);
            }};
        }
        while i + 32 <= len {
            block!(i);
            block!(i + 16);
            i += 32;
        }
        if i + 16 <= len {
            block!(i);
            i += 16;
        }
        i
    }
}

/// Run a GF(2⁸) transform with the widest available engine; returns the
/// number of bytes handled (the caller finishes the tail).
#[inline]
fn run_transform8<const OP: u8>(dst: *mut u8, other: *const u8, len: usize, c: u8) -> usize {
    let tab = &NIB8[c as usize];
    // SAFETY: dispatch guarantees the required target features; pointers
    // cover `len` valid bytes per the safe wrappers' slice arguments.
    unsafe {
        if crate::simd::caps().wide {
            transform8_avx2::<OP>(dst, other, len, tab)
        } else {
            transform8_ssse3::<OP>(dst, other, len, tab)
        }
    }
}

/// `dst[i] ^= c · src[i]` (generic `c`; `c = 0/1` are dispatched to the
/// SWAR fast paths before reaching this kernel).
pub(crate) fn axpy8(dst: &mut [u8], c: u8, src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = run_transform8::<OP_AXPY>(dst.as_mut_ptr(), src.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for (d, &s) in dst[n..].iter_mut().zip(&src[n..]) {
        *d ^= row[s as usize];
    }
}

/// `dst[i] = c · dst[i]` (in-place scale).
pub(crate) fn mul8(dst: &mut [u8], c: u8) {
    let n = run_transform8::<OP_MUL>(dst.as_mut_ptr(), dst.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for d in dst[n..].iter_mut() {
        *d = row[*d as usize];
    }
}

/// `dst[i] = c · src[i]` (scale into a destination).
pub(crate) fn mul8_into(dst: &mut [u8], c: u8, src: &[u8]) {
    debug_assert_eq!(dst.len(), src.len());
    let n = run_transform8::<OP_MUL_INTO>(dst.as_mut_ptr(), src.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for (d, &s) in dst[n..].iter_mut().zip(&src[n..]) {
        *d = row[s as usize];
    }
}

/// `dst[i] = c · dst[i] ^ pad[i]` (fused forward per-hop transform).
pub(crate) fn mul_xor8(dst: &mut [u8], c: u8, pad: &[u8]) {
    debug_assert_eq!(dst.len(), pad.len());
    let n = run_transform8::<OP_MUL_XOR>(dst.as_mut_ptr(), pad.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for (d, &p) in dst[n..].iter_mut().zip(&pad[n..]) {
        *d = row[*d as usize] ^ p;
    }
}

/// `dst[i] = c · (dst[i] ^ pad[i])` (fused inverse per-hop transform).
pub(crate) fn xor_mul8(dst: &mut [u8], c: u8, pad: &[u8]) {
    debug_assert_eq!(dst.len(), pad.len());
    let n = run_transform8::<OP_XOR_MUL>(dst.as_mut_ptr(), pad.as_ptr(), dst.len(), c);
    let row = bulk::mul_row(c);
    for (d, &p) in dst[n..].iter_mut().zip(&pad[n..]) {
        *d = row[(*d ^ p) as usize];
    }
}

// ---- GF(2⁸) fused multi-accumulator ---------------------------------------

/// How many output accumulators one fused pass feeds. Four 256-bit
/// accumulators plus per-source data and table registers fit the 16-ymm
/// register file; larger groups spill.
pub(crate) const FUSED_GROUP: usize = 4;

/// AVX2 fused kernel: for up to [`FUSED_GROUP`] outputs at once,
/// `outs[j][k] ^= Σ_i coeffs[j·nsrc + i] · srcs[i][k]`, loading each
/// source block once per group instead of once per (output, source)
/// pair. Returns bytes processed.
///
/// # Safety
///
/// Every pointer in `outs` and `srcs` must be valid for `len` bytes
/// (`outs` for writes), all mutually disjoint; `coeffs` must hold
/// `outs.len() · srcs.len()` entries; `outs.len() ≤ FUSED_GROUP`; the
/// caller must have verified AVX2 support.
#[target_feature(enable = "avx2")]
unsafe fn fused8_avx2(outs: &[*mut u8], coeffs: &[u8], srcs: &[*const u8], len: usize) -> usize {
    // SAFETY: per the fn contract, each indexed offset is `< len` on a
    // live disjoint buffer and `NIB8` rows are 32 bytes.
    unsafe {
        let g = outs.len();
        let nsrc = srcs.len();
        let mask = _mm256_set1_epi8(0x0f);
        let blocks = len / 32 * 32;
        for (si, &sp) in srcs.iter().enumerate() {
            // Hoist this source's per-output tables out of the block loop:
            // 2·FUSED_GROUP table registers plus the source stream and one
            // accumulator stay inside the 16-register file.
            let mut tlo = [_mm256_setzero_si256(); FUSED_GROUP];
            let mut thi = [_mm256_setzero_si256(); FUSED_GROUP];
            let mut live = [false; FUSED_GROUP];
            for j in 0..g {
                let c = coeffs[j * nsrc + si];
                if c == 0 {
                    continue;
                }
                let tab = &NIB8[c as usize];
                tlo[j] =
                    _mm256_broadcastsi128_si256(_mm_loadu_si128(tab.as_ptr() as *const __m128i));
                thi[j] = _mm256_broadcastsi128_si256(_mm_loadu_si128(
                    tab.as_ptr().add(16) as *const __m128i
                ));
                live[j] = true;
            }
            if !live.contains(&true) {
                continue;
            }
            let mut i = 0usize;
            while i + 32 <= len {
                let s = _mm256_loadu_si256(sp.add(i) as *const __m256i);
                let lo = _mm256_and_si256(s, mask);
                let hi = _mm256_and_si256(_mm256_srli_epi16(s, 4), mask);
                for j in 0..g {
                    if !live[j] {
                        continue;
                    }
                    let op = outs[j].add(i);
                    let acc = _mm256_loadu_si256(op as *const __m256i);
                    let prod = _mm256_xor_si256(
                        _mm256_shuffle_epi8(tlo[j], lo),
                        _mm256_shuffle_epi8(thi[j], hi),
                    );
                    _mm256_storeu_si256(op as *mut __m256i, _mm256_xor_si256(acc, prod));
                }
                i += 32;
            }
        }
        blocks
    }
}

/// SSSE3 fused kernel — same dataflow at 16 bytes per block.
///
/// # Safety
///
/// Same contract as [`fused8_avx2`], with SSSE3 as the required feature.
#[target_feature(enable = "ssse3")]
unsafe fn fused8_ssse3(outs: &[*mut u8], coeffs: &[u8], srcs: &[*const u8], len: usize) -> usize {
    // SAFETY: as in `fused8_avx2`.
    unsafe {
        let g = outs.len();
        let nsrc = srcs.len();
        let mask = _mm_set1_epi8(0x0f);
        let blocks = len / 16 * 16;
        for (si, &sp) in srcs.iter().enumerate() {
            let mut tlo = [_mm_setzero_si128(); FUSED_GROUP];
            let mut thi = [_mm_setzero_si128(); FUSED_GROUP];
            let mut live = [false; FUSED_GROUP];
            for j in 0..g {
                let c = coeffs[j * nsrc + si];
                if c == 0 {
                    continue;
                }
                let tab = &NIB8[c as usize];
                tlo[j] = _mm_loadu_si128(tab.as_ptr() as *const __m128i);
                thi[j] = _mm_loadu_si128(tab.as_ptr().add(16) as *const __m128i);
                live[j] = true;
            }
            if !live.contains(&true) {
                continue;
            }
            let mut i = 0usize;
            while i + 16 <= len {
                let s = _mm_loadu_si128(sp.add(i) as *const __m128i);
                let lo = _mm_and_si128(s, mask);
                let hi = _mm_and_si128(_mm_srli_epi16(s, 4), mask);
                for j in 0..g {
                    if !live[j] {
                        continue;
                    }
                    let op = outs[j].add(i);
                    let acc = _mm_loadu_si128(op as *const __m128i);
                    let prod =
                        _mm_xor_si128(_mm_shuffle_epi8(tlo[j], lo), _mm_shuffle_epi8(thi[j], hi));
                    _mm_storeu_si128(op as *mut __m128i, _mm_xor_si128(acc, prod));
                }
                i += 16;
            }
        }
        blocks
    }
}

/// Fused multi-coefficient accumulate:
/// `outs[j][k] ^= Σ_i coeffs[j·srcs.len() + i] · srcs[i][k]`
/// (coefficients output-major), loading each source slice once per
/// group of [`FUSED_GROUP`] outputs.
pub(crate) fn fused8(outs: &mut [&mut [u8]], coeffs: &[u8], srcs: &[&[u8]]) {
    let nsrc = srcs.len();
    let len = srcs.first().map_or(0, |s| s.len());
    let src_ptrs: Vec<*const u8> = srcs.iter().map(|s| s.as_ptr()).collect();
    for (chunk_idx, chunk) in outs.chunks_mut(FUSED_GROUP).enumerate() {
        let cbase = chunk_idx * FUSED_GROUP * nsrc;
        let coeffs = &coeffs[cbase..cbase + chunk.len() * nsrc];
        let out_ptrs: Vec<*mut u8> = chunk.iter_mut().map(|o| o.as_mut_ptr()).collect();
        // SAFETY: the `&mut` outputs are disjoint by construction, the
        // pointers cover `len` bytes each (asserted by the dispatcher),
        // and the required target features are detection-guaranteed.
        let n = unsafe {
            if crate::simd::caps().wide {
                fused8_avx2(&out_ptrs, coeffs, &src_ptrs, len)
            } else {
                fused8_ssse3(&out_ptrs, coeffs, &src_ptrs, len)
            }
        };
        // Scalar tail: same accumulation order, table-row lookups.
        for (j, out) in chunk.iter_mut().enumerate() {
            for (si, src) in srcs.iter().enumerate() {
                let c = coeffs[j * nsrc + si];
                if c == 0 {
                    continue;
                }
                let row = bulk::mul_row(c);
                for (d, &s) in out[n..].iter_mut().zip(&src[n..]) {
                    *d ^= row[s as usize];
                }
            }
        }
    }
}

// ---- GF(2⁸) dot product (PCLMULQDQ) ---------------------------------------

/// Carry-less dot core: processes `len/16*16` bytes, returning the
/// *unreduced* 15-bit accumulator and bytes consumed.
///
/// Both operands are widened to 16-bit lanes; `b` is byte-reversed
/// within each 4-byte group so that after widening, the products
/// `a[k]·b[k]` of one 64-bit lane land at distinct 32-bit spacings of
/// one `PCLMULQDQ` result, XOR-aligned at bit 48 across lanes.
///
/// # Safety
///
/// `a` and `b` must each be valid for `len` bytes; the caller must have
/// verified SSSE3 + PCLMULQDQ + SSE4.1 support.
#[target_feature(enable = "ssse3,pclmulqdq,sse4.1")]
unsafe fn dot8_clmul(a: *const u8, b: *const u8, len: usize) -> (u32, usize) {
    // SAFETY: per the fn contract, `a + i`/`b + i` stay `< len` and the
    // loads are unaligned variants.
    unsafe {
        let rev = _mm_setr_epi8(3, 2, 1, 0, 7, 6, 5, 4, 11, 10, 9, 8, 15, 14, 13, 12);
        let mut acc = _mm_setzero_si128();
        let n = len / 16 * 16;
        let mut i = 0usize;
        while i < n {
            let va = _mm_loadu_si128(a.add(i) as *const __m128i);
            let vb = _mm_shuffle_epi8(_mm_loadu_si128(b.add(i) as *const __m128i), rev);
            let a_lo = _mm_cvtepu8_epi16(va);
            let a_hi = _mm_cvtepu8_epi16(_mm_srli_si128(va, 8));
            let b_lo = _mm_cvtepu8_epi16(vb);
            let b_hi = _mm_cvtepu8_epi16(_mm_srli_si128(vb, 8));
            acc = _mm_xor_si128(acc, _mm_clmulepi64_si128(a_lo, b_lo, 0x00));
            acc = _mm_xor_si128(acc, _mm_clmulepi64_si128(a_lo, b_lo, 0x11));
            acc = _mm_xor_si128(acc, _mm_clmulepi64_si128(a_hi, b_hi, 0x00));
            acc = _mm_xor_si128(acc, _mm_clmulepi64_si128(a_hi, b_hi, 0x11));
            i += 16;
        }
        // Every lane-product of every CLMUL lands its dot terms at bits
        // 48..62 of the low qword; everything else is discarded cross-terms.
        let lo = _mm_cvtsi128_si64(acc) as u64;
        (((lo >> 48) & 0x7FFF) as u32, n)
    }
}

/// Dot product `Σ a[i]·b[i]` over GF(2⁸), or `None` when the host lacks
/// PCLMULQDQ (dispatch then falls back to the SWAR path).
pub(crate) fn dot8(a: &[u8], b: &[u8]) -> Option<u8> {
    debug_assert_eq!(a.len(), b.len());
    if !crate::simd::caps().clmul {
        return None;
    }
    // SAFETY: clmul capability checked above; pointers cover `len` bytes.
    let (un, n) = unsafe { dot8_clmul(a.as_ptr(), b.as_ptr(), a.len()) };
    let mut acc = tables::reduce15(un);
    for (&x, &y) in a[n..].iter().zip(&b[n..]) {
        acc ^= bulk::mul_row(x)[y as usize];
    }
    Some(acc)
}

// ---- GF(2¹⁶) kernels ------------------------------------------------------

/// Minimum element count for the GF(2¹⁶) table kernels: below this the
/// 64 scalar multiplies building the per-coefficient table set cost more
/// than they save, and dispatch stays on the SWAR path.
pub(crate) const MIN_LEN16: usize = 64;

const OP16_AXPY: u8 = 0;
const OP16_MUL: u8 = 1;

/// AVX2 GF(2¹⁶) engine over 32-element (64-byte) blocks; `OP16_AXPY`
/// computes `acc ^= m(src)`, `OP16_MUL` computes `dst = m(dst)`.
/// Returns elements processed.
///
/// # Safety
///
/// `dst` and `src` must each be valid for `2 · len_elems` bytes (`dst`
/// for writes; equal pointers are fine, partial overlap is not); the
/// caller must have verified AVX2 support.
#[target_feature(enable = "avx2")]
unsafe fn transform16_avx2<const OP: u8>(
    dst: *mut u8,
    src: *const u8,
    len_elems: usize,
    tab: &[u8; 128],
) -> usize {
    // SAFETY: per the fn contract, byte offsets stay `< 2 · len_elems`,
    // loads/stores are unaligned variants, and `tab` covers 128 bytes
    // so `tab + o` is in bounds for every `o ≤ 112` used below.
    unsafe {
        let bt = |o: usize| {
            _mm256_broadcastsi128_si256(_mm_loadu_si128(tab.as_ptr().add(o) as *const __m128i))
        };
        let tl0 = bt(0);
        let tl1 = bt(16);
        let tl2 = bt(32);
        let tl3 = bt(48);
        let th0 = bt(64);
        let th1 = bt(80);
        let th2 = bt(96);
        let th3 = bt(112);
        let nib = _mm256_set1_epi8(0x0f);
        // Deinterleave u16 lanes into [lo bytes ×8, hi bytes ×8] per lane…
        let sep = _mm256_setr_epi8(
            0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15, 0, 2, 4, 6, 8, 10, 12, 14, 1, 3,
            5, 7, 9, 11, 13, 15,
        );
        // …and back.
        let ilv = _mm256_setr_epi8(
            0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15, 0, 8, 1, 9, 2, 10, 3, 11, 4, 12,
            5, 13, 6, 14, 7, 15,
        );
        let n = len_elems / 32 * 32;
        let mut i = 0usize; // byte index
        while i < n * 2 {
            let va = _mm256_loadu_si256(src.add(i) as *const __m256i);
            let vb = _mm256_loadu_si256(src.add(i + 32) as *const __m256i);
            let sa = _mm256_shuffle_epi8(va, sep);
            let sb = _mm256_shuffle_epi8(vb, sep);
            let vlo = _mm256_unpacklo_epi64(sa, sb);
            let vhi = _mm256_unpackhi_epi64(sa, sb);
            let n0 = _mm256_and_si256(vlo, nib);
            let n1 = _mm256_and_si256(_mm256_srli_epi16(vlo, 4), nib);
            let n2 = _mm256_and_si256(vhi, nib);
            let n3 = _mm256_and_si256(_mm256_srli_epi16(vhi, 4), nib);
            let rlo = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_shuffle_epi8(tl0, n0), _mm256_shuffle_epi8(tl1, n1)),
                _mm256_xor_si256(_mm256_shuffle_epi8(tl2, n2), _mm256_shuffle_epi8(tl3, n3)),
            );
            let rhi = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_shuffle_epi8(th0, n0), _mm256_shuffle_epi8(th1, n1)),
                _mm256_xor_si256(_mm256_shuffle_epi8(th2, n2), _mm256_shuffle_epi8(th3, n3)),
            );
            let pa = _mm256_unpacklo_epi64(rlo, rhi);
            let pb = _mm256_unpackhi_epi64(rlo, rhi);
            let ra = _mm256_shuffle_epi8(pa, ilv);
            let rb = _mm256_shuffle_epi8(pb, ilv);
            let (ra, rb) = if OP == OP16_AXPY {
                let da = _mm256_loadu_si256(dst.add(i) as *const __m256i);
                let db = _mm256_loadu_si256(dst.add(i + 32) as *const __m256i);
                (_mm256_xor_si256(da, ra), _mm256_xor_si256(db, rb))
            } else {
                (ra, rb)
            };
            _mm256_storeu_si256(dst.add(i) as *mut __m256i, ra);
            _mm256_storeu_si256(dst.add(i + 32) as *mut __m256i, rb);
            i += 64;
        }
        n
    }
}

/// SSSE3 GF(2¹⁶) engine over 16-element (32-byte) blocks.
///
/// # Safety
///
/// Same contract as [`transform16_avx2`], with SSSE3 as the required
/// feature.
#[target_feature(enable = "ssse3")]
unsafe fn transform16_ssse3<const OP: u8>(
    dst: *mut u8,
    src: *const u8,
    len_elems: usize,
    tab: &[u8; 128],
) -> usize {
    // SAFETY: as in `transform16_avx2`.
    unsafe {
        let lt = |o: usize| _mm_loadu_si128(tab.as_ptr().add(o) as *const __m128i);
        let tl0 = lt(0);
        let tl1 = lt(16);
        let tl2 = lt(32);
        let tl3 = lt(48);
        let th0 = lt(64);
        let th1 = lt(80);
        let th2 = lt(96);
        let th3 = lt(112);
        let nib = _mm_set1_epi8(0x0f);
        let sep = _mm_setr_epi8(0, 2, 4, 6, 8, 10, 12, 14, 1, 3, 5, 7, 9, 11, 13, 15);
        let ilv = _mm_setr_epi8(0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5, 13, 6, 14, 7, 15);
        let n = len_elems / 16 * 16;
        let mut i = 0usize;
        while i < n * 2 {
            let va = _mm_loadu_si128(src.add(i) as *const __m128i);
            let vb = _mm_loadu_si128(src.add(i + 16) as *const __m128i);
            let sa = _mm_shuffle_epi8(va, sep);
            let sb = _mm_shuffle_epi8(vb, sep);
            let vlo = _mm_unpacklo_epi64(sa, sb);
            let vhi = _mm_unpackhi_epi64(sa, sb);
            let n0 = _mm_and_si128(vlo, nib);
            let n1 = _mm_and_si128(_mm_srli_epi16(vlo, 4), nib);
            let n2 = _mm_and_si128(vhi, nib);
            let n3 = _mm_and_si128(_mm_srli_epi16(vhi, 4), nib);
            let rlo = _mm_xor_si128(
                _mm_xor_si128(_mm_shuffle_epi8(tl0, n0), _mm_shuffle_epi8(tl1, n1)),
                _mm_xor_si128(_mm_shuffle_epi8(tl2, n2), _mm_shuffle_epi8(tl3, n3)),
            );
            let rhi = _mm_xor_si128(
                _mm_xor_si128(_mm_shuffle_epi8(th0, n0), _mm_shuffle_epi8(th1, n1)),
                _mm_xor_si128(_mm_shuffle_epi8(th2, n2), _mm_shuffle_epi8(th3, n3)),
            );
            let pa = _mm_unpacklo_epi64(rlo, rhi);
            let pb = _mm_unpackhi_epi64(rlo, rhi);
            let ra = _mm_shuffle_epi8(pa, ilv);
            let rb = _mm_shuffle_epi8(pb, ilv);
            let (ra, rb) = if OP == OP16_AXPY {
                let da = _mm_loadu_si128(dst.add(i) as *const __m128i);
                let db = _mm_loadu_si128(dst.add(i + 16) as *const __m128i);
                (_mm_xor_si128(da, ra), _mm_xor_si128(db, rb))
            } else {
                (ra, rb)
            };
            _mm_storeu_si128(dst.add(i) as *mut __m128i, ra);
            _mm_storeu_si128(dst.add(i + 16) as *mut __m128i, rb);
            i += 32;
        }
        n
    }
}

#[inline]
fn run_transform16<const OP: u8>(
    dst: *mut u8,
    src: *const u8,
    len_elems: usize,
    c: Gf65536,
) -> usize {
    let tab = tables::tab16(c);
    // SAFETY: dispatch guarantees the target features; pointers cover
    // `2 · len_elems` valid bytes (from `#[repr(transparent)]` slices).
    unsafe {
        if crate::simd::caps().wide {
            transform16_avx2::<OP>(dst, src, len_elems, &tab)
        } else {
            transform16_ssse3::<OP>(dst, src, len_elems, &tab)
        }
    }
}

/// `acc[i] ^= c · src[i]` over GF(2¹⁶) (generic `c`).
pub(crate) fn axpy16(acc: &mut [Gf65536], c: Gf65536, src: &[Gf65536]) {
    debug_assert_eq!(acc.len(), src.len());
    let n = run_transform16::<OP16_AXPY>(
        acc.as_mut_ptr() as *mut u8,
        src.as_ptr() as *const u8,
        acc.len(),
        c,
    );
    let t = gf65536::tables();
    let lc = t.log[c.0 as usize] as usize;
    for (a, &s) in acc[n..].iter_mut().zip(&src[n..]) {
        if s.0 != 0 {
            a.0 ^= t.exp[lc + t.log[s.0 as usize] as usize];
        }
    }
}

/// `row[i] = c · row[i]` over GF(2¹⁶) (generic `c`, in place).
pub(crate) fn mul16(row: &mut [Gf65536], c: Gf65536) {
    let n = run_transform16::<OP16_MUL>(
        row.as_mut_ptr() as *mut u8,
        row.as_ptr() as *const u8,
        row.len(),
        c,
    );
    let t = gf65536::tables();
    let lc = t.log[c.0 as usize] as usize;
    for v in row[n..].iter_mut() {
        if v.0 != 0 {
            v.0 = t.exp[lc + t.log[v.0 as usize] as usize];
        }
    }
}

/// Carry-less GF(2¹⁶) dot core over 8-element (16-byte) blocks:
/// operands widen to 32-bit lanes, `b` swaps `u16` pairs per 4-byte
/// group, products XOR-align at bit 32 of each 128-bit result. Returns
/// the unreduced 31-bit accumulator and elements consumed.
///
/// # Safety
///
/// `a` and `b` must each be valid for `2 · len_elems` bytes; the caller
/// must have verified SSSE3 + PCLMULQDQ + SSE4.1 support.
#[target_feature(enable = "ssse3,pclmulqdq,sse4.1")]
unsafe fn dot16_clmul(a: *const u8, b: *const u8, len_elems: usize) -> (u64, usize) {
    // SAFETY: per the fn contract, byte offsets stay `< 2 · len_elems`
    // and the loads are unaligned variants.
    unsafe {
        let rev = _mm_setr_epi8(2, 3, 0, 1, 6, 7, 4, 5, 10, 11, 8, 9, 14, 15, 12, 13);
        let mut acc = _mm_setzero_si128();
        let n = len_elems / 8 * 8;
        let mut i = 0usize;
        while i < n * 2 {
            let va = _mm_loadu_si128(a.add(i) as *const __m128i);
            let vb = _mm_shuffle_epi8(_mm_loadu_si128(b.add(i) as *const __m128i), rev);
            let a_lo = _mm_cvtepu16_epi32(va);
            let a_hi = _mm_cvtepu16_epi32(_mm_srli_si128(va, 8));
            let b_lo = _mm_cvtepu16_epi32(vb);
            let b_hi = _mm_cvtepu16_epi32(_mm_srli_si128(vb, 8));
            acc = _mm_xor_si128(acc, _mm_clmulepi64_si128(a_lo, b_lo, 0x00));
            acc = _mm_xor_si128(acc, _mm_clmulepi64_si128(a_lo, b_lo, 0x11));
            acc = _mm_xor_si128(acc, _mm_clmulepi64_si128(a_hi, b_hi, 0x00));
            acc = _mm_xor_si128(acc, _mm_clmulepi64_si128(a_hi, b_hi, 0x11));
            i += 16;
        }
        // Dot terms collect at bits 32..62 of the low qword of every CLMUL.
        let lo = _mm_cvtsi128_si64(acc) as u64;
        ((lo >> 32) & 0x7FFF_FFFF, n)
    }
}

/// Dot product `Σ a[i]·b[i]` over GF(2¹⁶), or `None` when the host
/// lacks PCLMULQDQ.
pub(crate) fn dot16(a: &[Gf65536], b: &[Gf65536]) -> Option<Gf65536> {
    debug_assert_eq!(a.len(), b.len());
    if !crate::simd::caps().clmul {
        return None;
    }
    // SAFETY: clmul capability checked; `#[repr(transparent)]` slices
    // cover `2 · len` bytes.
    let (un, n) = unsafe { dot16_clmul(a.as_ptr() as *const u8, b.as_ptr() as *const u8, a.len()) };
    let mut acc = tables::reduce31(un);
    let t = gf65536::tables();
    for (&x, &y) in a[n..].iter().zip(&b[n..]) {
        if x.0 != 0 && y.0 != 0 {
            acc ^= t.exp[t.log[x.0 as usize] as usize + t.log[y.0 as usize] as usize];
        }
    }
    Some(Gf65536(acc))
}
