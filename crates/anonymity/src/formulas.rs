//! Closed-form expressions from Appendix A, used to cross-validate the
//! Monte-Carlo simulation and to draw the analytic parts of Figs. 7–10.

/// Binomial coefficient as f64.
pub fn choose(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

/// `g(x, y, z) = Σ_{i=1..y} C(x,i) z^i (1−z)^{x−i}` (Appendix A.2):
/// probability that a stage of `x` nodes has between 1 and `y` malicious.
pub fn g(x: u64, y: u64, z: f64) -> f64 {
    (1..=y.min(x)).map(|i| choose(x, i) * z.powi(i as i32) * (1.0 - z).powi((x - i) as i32)).sum()
}

/// Probability that a single stage of width `w` contains at least `d`
/// malicious nodes (the "decodable stage" event; `w = d` gives the
/// paper's `f^d`).
pub fn stage_compromised(w: u64, d: u64, f: f64) -> f64 {
    (d..=w)
        .map(|i| choose(w, i) * f.powi(i as i32) * (1.0 - f).powi((w - i) as i32))
        .sum()
}

/// Source Case-1 probability without redundancy: `f^d` (Appendix A.1),
/// and with redundancy `Σ_{i=d..d'} C(d',i) f^i (1−f)^{d'−i}`
/// (Appendix A.3).
pub fn source_case1(width: u64, d: u64, f: f64) -> f64 {
    stage_compromised(width, d, f)
}

/// Eq. 9: probability that at least one of the `j` stages upstream of the
/// destination (at stage `j+1`) is fully malicious, no redundancy
/// (`width == d`).
pub fn pfail_eq9(j: u64, d: u64, f: f64) -> f64 {
    let fd = f.powi(d as i32);
    (1..=j)
        .map(|i| choose(j, i) * fd.powi(i as i32) * g(d, d - 1, f).powi((j - i) as i32))
        .sum()
}

/// Eq. 12: the same with redundancy — at least one upstream stage has ≥ d
/// of its `d′` nodes malicious. (The paper writes the first-order term
/// `C(d′,d) f^d`; we use the exact tail sum, which it approximates.)
pub fn pfail_eq12(j: u64, d: u64, d_prime: u64, f: f64) -> f64 {
    let pc = stage_compromised(d_prime, d, f);
    1.0 - (1.0 - pc).powi(j as i32)
}

/// Eq. 10: overall destination Case-1 probability with the destination
/// uniform over stages `1..=L`.
pub fn dest_case1(l: u64, width: u64, d: u64, f: f64) -> f64 {
    let pc = stage_compromised(width, d, f);
    // Destination at stage j+1 has j upstream stages; P = 1-(1-pc)^j.
    (0..l)
        .map(|j| 1.0 - (1.0 - pc).powi(j as i32))
        .sum::<f64>()
        / l as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{sample_layout, ScenarioParams};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn choose_values() {
        assert_eq!(choose(5, 2), 10.0);
        assert_eq!(choose(10, 0), 1.0);
        assert_eq!(choose(3, 5), 0.0);
    }

    #[test]
    fn g_is_between_zero_and_one() {
        for f in [0.0, 0.1, 0.5, 0.9, 1.0] {
            let v = g(3, 2, f);
            assert!((0.0..=1.0).contains(&v), "g out of range at f={f}");
        }
    }

    #[test]
    fn stage_compromised_boundaries() {
        assert_eq!(stage_compromised(3, 3, 0.0), 0.0);
        assert!((stage_compromised(3, 3, 1.0) - 1.0).abs() < 1e-12);
        // No redundancy: equals f^d.
        let f = 0.3f64;
        assert!((stage_compromised(3, 3, f) - f.powi(3)).abs() < 1e-12);
        // Redundancy increases the chance.
        assert!(stage_compromised(5, 3, f) > stage_compromised(3, 3, f));
    }

    #[test]
    fn eq9_equals_union_form_without_redundancy() {
        // Eq. 9's inclusion-style sum must match 1-(1-f^d)^j when stages
        // are independent... they differ in formulation; both must at
        // least agree at the boundaries and stay in [0,1].
        for f in [0.05f64, 0.2, 0.5] {
            for j in 1..=6u64 {
                let v = pfail_eq9(j, 3, f);
                assert!((0.0..=1.0 + 1e-9).contains(&v), "pfail out of range");
                let union = 1.0 - (1.0 - f.powi(3)).powi(j as i32);
                // The paper's expansion conditions on how many stages have
                // *some* malicious nodes; it is upper-bounded by the union
                // form's complement structure. Just sanity-check ordering
                // against zero/small f.
                if f < 0.1 {
                    assert!((v - union).abs() < 0.05, "diverges at small f");
                }
            }
        }
    }

    #[test]
    fn monte_carlo_matches_stage_compromised() {
        // Simulated frequency of "stage 1 has >= d malicious" must match
        // the closed form.
        let p = ScenarioParams::new(10_000, 8, 3, 0.35).with_width(5);
        let mut rng = StdRng::seed_from_u64(42);
        let trials = 30_000;
        let mut hits = 0;
        for _ in 0..trials {
            let layout = sample_layout(&p, &mut rng);
            // Skip trials where the destination occupies stage 1 (it is
            // forced honest and shrinks the sample space).
            if layout.dest_stage == 1 {
                continue;
            }
            if layout.bad[0] >= p.split {
                hits += 1;
            }
        }
        let est = hits as f64 / trials as f64;
        let predicted = stage_compromised(5, 3, 0.35) * (1.0 - 1.0 / 8.0);
        // predicted adjusted: we skipped ~1/8 of trials from the count's
        // denominator, so compare to conditional value.
        let conditional = stage_compromised(5, 3, 0.35);
        let est_conditional = est / (1.0 - 1.0 / 8.0);
        let _ = predicted;
        assert!(
            (est_conditional - conditional).abs() < 0.02,
            "MC {est_conditional:.4} vs analytic {conditional:.4}"
        );
    }

    #[test]
    fn dest_case1_monotone_in_f_and_l() {
        assert!(dest_case1(8, 3, 3, 0.2) < dest_case1(8, 3, 3, 0.4));
        assert!(dest_case1(4, 3, 3, 0.3) < dest_case1(16, 3, 3, 0.3));
        assert!(dest_case1(8, 6, 3, 0.3) > dest_case1(8, 3, 3, 0.3));
    }
}
