//! CLI driver: `cargo run -p slicing-lint [-- --ci | --write-ledger]`.
//!
//! Exit codes: 0 clean, 1 findings (or ledger drift in `--ci`), 2 usage
//! or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/lint/ -> workspace root, so the tool works from any cwd
    // under `cargo run -p slicing-lint`.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

fn main() -> ExitCode {
    let mut ci = false;
    let mut write_ledger = false;
    let mut root = workspace_root();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--ci" => ci = true,
            "--write-ledger" => write_ledger = true,
            "--root" => match args.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown argument `{other}` (try --ci, --write-ledger, --root <path>)");
                return ExitCode::from(2);
            }
        }
    }

    let mut report = match slicing_lint::analyze_tree(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("slicing-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    let ledger_path = root.join(slicing_lint::LEDGER_FILE);
    let generated = slicing_lint::render_ledger(&report.inventory);
    if write_ledger {
        if let Err(e) = std::fs::write(&ledger_path, &generated) {
            eprintln!("slicing-lint: cannot write {}: {e}", ledger_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} unsafe sites)",
            ledger_path.display(),
            report.inventory.len()
        );
    } else if ci {
        let existing = std::fs::read_to_string(&ledger_path).unwrap_or_default();
        report
            .findings
            .extend(slicing_lint::diff_ledger(&existing, &generated));
    }

    for f in &report.findings {
        println!("{f}");
    }
    if report.findings.is_empty() {
        println!(
            "slicing-lint: clean ({} unsafe sites inventoried, all annotated{})",
            report.inventory.len(),
            if ci { ", ledger current" } else { "" }
        );
        ExitCode::SUCCESS
    } else {
        println!("slicing-lint: {} finding(s)", report.findings.len());
        ExitCode::from(1)
    }
}
