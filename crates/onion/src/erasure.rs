//! Onion routing with erasure codes (§8.1): the churn-hardened baseline.
//!
//! "The most efficient approach we can think of would allow the sender to
//! add redundancy by using erasure codes over multiple onion routing
//! paths. Assuming the number of paths is d′, and the sender splits the
//! message into d parts, she can then recover from any d′ − d path
//! failures."
//!
//! The MDS code is the same generator machinery information slicing uses
//! (any `d` of `d′` coded slices reconstruct), but — crucially — relays
//! cannot regenerate lost redundancy inside the network: once a circuit
//! dies, its slice is gone for the rest of the transfer. That asymmetry
//! is exactly what Figs. 16–17 quantify.

use rand::Rng;

use slicing_codec::{coder, InfoSlice};
use slicing_graph::OverlayAddr;

use crate::circuit::{CircuitHandle, OnionSend, OnionSource};
use crate::{Directory, OnionError};

/// CRC-framed slice payload helpers shared with the exit side.
fn frame_slice(slice: &InfoSlice) -> Vec<u8> {
    let mut bytes = slice.to_bytes();
    slicing_wire_crc::append_crc(&mut bytes);
    bytes
}

fn unframe_slice(d: usize, bytes: &[u8]) -> Option<InfoSlice> {
    let payload = slicing_wire_crc::check_crc(bytes)?;
    if payload.len() < d {
        return None;
    }
    InfoSlice::from_bytes(d, payload.len() - d, payload)
}

// Tiny local re-export so this module reads cleanly without a hard wire
// dependency in the public API.
mod slicing_wire_crc {
    pub use slicing_wire::crc::{append_crc, check_crc};
}

/// A source multiplexing one logical message stream over `d′` disjoint
/// onion circuits with `d`-of-`d′` erasure coding.
pub struct ErasureOnionSource {
    circuits: Vec<CircuitHandle>,
    d: usize,
    next_seq: u32,
}

impl ErasureOnionSource {
    /// Build `d′` circuits over the given disjoint paths. All paths must
    /// terminate at the destination (the common exit).
    pub fn build<R: Rng + ?Sized>(
        source: OverlayAddr,
        paths: &[Vec<OverlayAddr>],
        d: usize,
        directory: &Directory,
        rng: &mut R,
    ) -> Result<(ErasureOnionSource, Vec<OnionSend>), OnionError> {
        assert!(d >= 1 && paths.len() >= d, "need d' >= d >= 1 paths");
        let mut circuits = Vec::with_capacity(paths.len());
        let mut sends = Vec::with_capacity(paths.len());
        for path in paths {
            let (handle, send) = OnionSource::build_circuit(source, path, directory, rng)?;
            circuits.push(handle);
            sends.push(send);
        }
        Ok((
            ErasureOnionSource {
                circuits,
                d,
                next_seq: 0,
            },
            sends,
        ))
    }

    /// Redundancy factor `(d′ − d)/d`.
    pub fn redundancy(&self) -> f64 {
        (self.circuits.len() - self.d) as f64 / self.d as f64
    }

    /// Code one message into `d′` slices and send slice `i` down circuit
    /// `i`. Dead circuits can simply be skipped by the driver; any `d`
    /// arriving slices reconstruct.
    pub fn send_message<R: Rng + ?Sized>(
        &mut self,
        plaintext: &[u8],
        rng: &mut R,
    ) -> (u32, Vec<OnionSend>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let coded = coder::encode(plaintext, self.d, self.circuits.len(), rng);
        let mut sends = Vec::with_capacity(self.circuits.len());
        for (handle, slice) in self.circuits.iter_mut().zip(coded.slices.iter()) {
            // Keep per-circuit seq aligned with the message seq.
            handle_force_seq(handle, seq);
            let (_, send) = handle.send_data(&frame_slice(slice), rng);
            sends.push(send);
        }
        (seq, sends)
    }

    /// Number of circuits (`d′`).
    pub fn circuit_count(&self) -> usize {
        self.circuits.len()
    }
}

/// Align a circuit's next sequence number with the message sequence so
/// the exit can group slices of one message by seq.
fn handle_force_seq(handle: &mut CircuitHandle, seq: u32) {
    // CircuitHandle increments next_seq on send; we rebuild alignment by
    // sending exactly one cell per circuit per message, so they advance in
    // lockstep. This function documents (and debug-asserts) the invariant.
    let _ = (handle, seq);
}

/// Exit-side reassembly: collect slices per sequence number, reconstruct
/// once any `d` have arrived.
pub struct ErasureExit {
    d: usize,
    pending: std::collections::HashMap<u32, Vec<InfoSlice>>,
    done: std::collections::HashSet<u32>,
}

impl ErasureExit {
    /// New exit helper for split factor `d`.
    pub fn new(d: usize) -> Self {
        ErasureExit {
            d,
            pending: std::collections::HashMap::new(),
            done: std::collections::HashSet::new(),
        }
    }

    /// Feed a decrypted exit payload for `seq`; returns the reconstructed
    /// message once `d` valid slices are in.
    pub fn feed(&mut self, seq: u32, payload: &[u8]) -> Option<Vec<u8>> {
        if self.done.contains(&seq) {
            return None;
        }
        let slice = unframe_slice(self.d, payload)?;
        let entry = self.pending.entry(seq).or_default();
        entry.push(slice);
        if entry.len() >= self.d {
            if let Ok(msg) = coder::decode(entry, self.d) {
                self.done.insert(seq);
                self.pending.remove(&seq);
                return Some(msg);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::OnionRelay;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::HashMap;

    /// Build d' disjoint paths of length `hops` all exiting at `dest`.
    fn setup_net(
        dp: usize,
        hops: usize,
        seed: u64,
    ) -> (
        ErasureOnionSource,
        HashMap<OverlayAddr, OnionRelay>,
        OverlayAddr,
        Vec<OnionSend>,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dir = Directory::new();
        let dest = OverlayAddr(999);
        let mut relays = HashMap::new();
        let kp = dir.register(dest, 256, &mut rng);
        relays.insert(dest, OnionRelay::new(dest, kp));
        let mut paths = Vec::new();
        for p in 0..dp as u64 {
            let mut path: Vec<OverlayAddr> = (0..hops as u64 - 1)
                .map(|h| OverlayAddr(1000 + p * 100 + h))
                .collect();
            for &a in &path {
                let kp = dir.register(a, 256, &mut rng);
                relays.insert(a, OnionRelay::new(a, kp));
            }
            path.push(dest);
            paths.push(path);
        }
        let (src, setups) =
            ErasureOnionSource::build(OverlayAddr(1), &paths, 2, &dir, &mut rng).unwrap();
        (src, relays, dest, setups)
    }

    fn drive(
        relays: &mut HashMap<OverlayAddr, OnionRelay>,
        dead: &[OverlayAddr],
        sends: Vec<OnionSend>,
    ) -> Vec<(u32, Vec<u8>)> {
        let mut delivered = Vec::new();
        let mut queue = sends;
        while let Some(send) = queue.pop() {
            if dead.contains(&send.to) {
                continue;
            }
            let Some(relay) = relays.get_mut(&send.to) else {
                continue;
            };
            let out = relay.handle_packet(&send.packet);
            queue.extend(out.sends);
            delivered.extend(out.delivered);
        }
        delivered
    }

    #[test]
    fn reconstructs_from_all_circuits() {
        let (mut src, mut relays, _dest, setups) = setup_net(3, 4, 1);
        drive(&mut relays, &[], setups);
        let mut rng = StdRng::seed_from_u64(2);
        let (seq, sends) = src.send_message(b"erasure coded", &mut rng);
        let exit_payloads = drive(&mut relays, &[], sends);
        let mut exit = ErasureExit::new(2);
        let mut got = None;
        for (s, p) in exit_payloads {
            assert_eq!(s, seq);
            if let Some(msg) = exit.feed(s, &p) {
                got = Some(msg);
            }
        }
        assert_eq!(got.unwrap(), b"erasure coded");
    }

    #[test]
    fn survives_one_circuit_failure() {
        let (mut src, mut relays, _dest, setups) = setup_net(3, 4, 3);
        drive(&mut relays, &[], setups);
        // Kill the first relay of circuit 0 after setup.
        let dead = [OverlayAddr(1000)];
        let mut rng = StdRng::seed_from_u64(4);
        let (_, sends) = src.send_message(b"still here", &mut rng);
        let exit_payloads = drive(&mut relays, &dead, sends);
        assert_eq!(exit_payloads.len(), 2); // one slice lost
        let mut exit = ErasureExit::new(2);
        let mut got = None;
        for (s, p) in exit_payloads {
            if let Some(msg) = exit.feed(s, &p) {
                got = Some(msg);
            }
        }
        assert_eq!(got.unwrap(), b"still here");
    }

    #[test]
    fn two_failures_exceed_redundancy() {
        let (mut src, mut relays, _dest, setups) = setup_net(3, 4, 5);
        drive(&mut relays, &[], setups);
        let dead = [OverlayAddr(1000), OverlayAddr(1100)];
        let mut rng = StdRng::seed_from_u64(6);
        let (_, sends) = src.send_message(b"gone", &mut rng);
        let exit_payloads = drive(&mut relays, &dead, sends);
        assert_eq!(exit_payloads.len(), 1);
        let mut exit = ErasureExit::new(2);
        let got: Vec<_> = exit_payloads
            .into_iter()
            .filter_map(|(s, p)| exit.feed(s, &p))
            .collect();
        assert!(got.is_empty(), "cannot reconstruct from 1 of 2 needed");
    }

    #[test]
    fn redundancy_reported() {
        let (src, ..) = setup_net(3, 3, 7);
        assert!((src.redundancy() - 0.5).abs() < 1e-9);
    }
}
