//! Vendored `#[tokio::test]` and `#[tokio::main]` attribute macros.
//!
//! Both rewrite an `async fn` into a synchronous one whose body drives
//! the future on the vendored runtime via `::tokio::runtime::block_on`.
//! Attribute arguments (`flavor`, `worker_threads`, ...) are accepted and
//! ignored: the vendored runtime always uses its global thread pool.

use proc_macro::{TokenStream, TokenTree};

/// Mark an `async fn` as a test driven by the vendored runtime.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}

/// Mark an `async fn main` as the program entry point.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

fn rewrite(item: TokenStream, is_test: bool) -> TokenStream {
    let mut tokens: Vec<TokenTree> = item.into_iter().collect();
    let body = match tokens.pop() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("expected function body, found {other:?}"),
    };
    // Drop the `async` keyword from the signature.
    let sig: String = tokens
        .into_iter()
        .filter(|t| !matches!(t, TokenTree::Ident(i) if i.to_string() == "async"))
        .map(|t| t.to_string() + " ")
        .collect();
    let attr = if is_test { "#[test]" } else { "" };
    let out = format!(
        "{attr} {sig} {{ ::tokio::runtime::block_on(async move {body}) }}",
        body = body
    );
    out.parse().expect("generated function parses")
}
