//! Split-nibble multiplication tables and polynomial reduction helpers
//! shared by every SIMD backend.
//!
//! The PSHUFB/TBL trick (ISA-L / Reed–Solomon style) computes `c · x`
//! for 16/32 bytes at once by decomposing `x` into nibbles: because
//! multiplication by a fixed `c` is linear over GF(2),
//! `c · x = c · x_lo ⊕ c · (x_hi << 4)`, and each term is a lookup into
//! a 16-entry table — exactly the shape a byte-shuffle instruction
//! (`PSHUFB` on x86, `TBL` on aarch64) evaluates 16 lanes at a time.
//!
//! * GF(2⁸): both 16-entry tables for every coefficient are baked at
//!   compile time into [`NIB8`] — 32 bytes per coefficient, 8 KiB total,
//!   so a kernel invocation is two table loads with no setup multiply.
//! * GF(2¹⁶): a full per-coefficient cache would cost 16 MiB, so
//!   [`tab16`] builds the 128-byte table set (4 input nibbles × 2 output
//!   byte planes) per call — 64 scalar multiplies, amortized over the
//!   whole slice and cheap next to the per-element work it replaces.

use crate::gf256::{build_exp, build_log};

/// Per-coefficient split-nibble tables for GF(2⁸), built at compile time.
///
/// `NIB8[c][x]` (for `x < 16`) is `c · x`; `NIB8[c][16 + x]` is
/// `c · (x << 4)`. A full product is
/// `NIB8[c][b & 0xF] ^ NIB8[c][16 + (b >> 4)]`.
pub(crate) static NIB8: [[u8; 32]; 256] = build_nib8();

const fn build_nib8() -> [[u8; 32]; 256] {
    let exp = build_exp();
    let log = build_log();
    let mut t = [[0u8; 32]; 256];
    let mut c = 1usize;
    while c < 256 {
        let lc = log[c] as usize;
        let mut x = 1usize;
        while x < 16 {
            t[c][x] = exp[lc + log[x] as usize];
            t[c][16 + x] = exp[lc + log[x << 4] as usize];
            x += 1;
        }
        c += 1;
    }
    t
}

/// Build the split-nibble table set for a GF(2¹⁶) coefficient.
///
/// Layout: four 16-byte tables for the *low* output byte
/// (`out[k*16 + n] = lo(c · (n << 4k))`, `k ∈ 0..4`) followed by the
/// same four tables for the *high* output byte (offset 64). A product
/// is the XOR of four lookups per output byte plane:
/// `c · w = ⊕ₖ c · (nibbleₖ(w) << 4k)`.
pub(crate) fn tab16(c: crate::Gf65536) -> [u8; 128] {
    use crate::Field;
    let mut out = [0u8; 128];
    for k in 0..4u16 {
        for n in 0..16u16 {
            let p = c.mul(crate::Gf65536(n << (4 * k))).0;
            out[(k * 16 + n) as usize] = (p & 0xFF) as u8;
            out[(64 + k * 16 + n) as usize] = (p >> 8) as u8;
        }
    }
    out
}

/// Reduce an unreduced carry-less product/accumulator of degree ≤ 14
/// modulo the GF(2⁸) polynomial `x⁸ + x⁴ + x³ + x² + 1` (0x11D).
///
/// The SIMD dot kernels XOR-accumulate *unreduced* 15-bit products
/// (reduction is linear, so one pass at the end suffices); this folds
/// the result back into the field.
pub(crate) fn reduce15(mut v: u32) -> u8 {
    for bit in (8..16).rev() {
        if v & (1 << bit) != 0 {
            v ^= (crate::gf256::POLY as u32) << (bit - 8);
        }
    }
    v as u8
}

/// Reduce an unreduced carry-less accumulator of degree ≤ 30 modulo the
/// GF(2¹⁶) polynomial `x¹⁶ + x¹² + x³ + x + 1` (0x1100B).
pub(crate) fn reduce31(mut v: u64) -> u16 {
    for bit in (16..32).rev() {
        if v & (1 << bit) != 0 {
            v ^= (crate::gf65536::POLY as u64) << (bit - 16);
        }
    }
    v as u16
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Field, Gf256, Gf65536};

    #[test]
    fn nib8_decomposition_is_exact() {
        for c in 0..=255u8 {
            for b in 0..=255u8 {
                let via_nibbles =
                    NIB8[c as usize][(b & 0xF) as usize] ^ NIB8[c as usize][16 + (b >> 4) as usize];
                assert_eq!(via_nibbles, Gf256::mul_bytes(c, b), "c={c} b={b}");
            }
        }
    }

    #[test]
    fn tab16_decomposition_is_exact() {
        for c in [0u16, 1, 2, 0xA7C3, 0xFFFF, 0x1234] {
            let t = tab16(Gf65536(c));
            for w in (0..=65535u16).step_by(257).chain([1, 0xFFFF, 0x8000]) {
                let mut lo = 0u8;
                let mut hi = 0u8;
                for k in 0..4 {
                    let n = ((w >> (4 * k)) & 0xF) as usize;
                    lo ^= t[k * 16 + n];
                    hi ^= t[64 + k * 16 + n];
                }
                let want = Gf65536(c).mul(Gf65536(w)).0;
                assert_eq!(u16::from_le_bytes([lo, hi]), want, "c={c:#x} w={w:#x}");
            }
        }
    }

    #[test]
    fn reductions_match_field_multiplication() {
        // An unreduced schoolbook product reduced by reduce15/reduce31
        // must equal the table multiply.
        for (a, b) in [(0x53u8, 0xCAu8), (0xFF, 0xFF), (2, 0x80), (1, 1)] {
            let mut un = 0u32;
            for i in 0..8 {
                if b & (1 << i) != 0 {
                    un ^= (a as u32) << i;
                }
            }
            assert_eq!(reduce15(un), Gf256::mul_bytes(a, b));
        }
        for (a, b) in [(0xA7C3u16, 0x1234u16), (0xFFFF, 0xFFFF), (2, 0x8000)] {
            let mut un = 0u64;
            for i in 0..16 {
                if b & (1 << i) != 0 {
                    un ^= (a as u64) << i;
                }
            }
            assert_eq!(reduce31(un), Gf65536(a).mul(Gf65536(b)).0);
        }
    }
}
