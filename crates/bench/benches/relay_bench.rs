//! Criterion benches for the relay data plane: packets/sec through
//! `RelayNode::handle_packet` and the cost of the timer `poll`, at
//! 1 / 64 / 1024 concurrent flows (the §7.1 per-node multi-flow daemon,
//! scaled toward the ROADMAP's "millions of users" north star).
//!
//! Each iteration replays one full data message for one flow: the relay
//! receives one wire packet from each parent (decoded from bytes, as the
//! daemon would), completes the gather and flushes downstream — i.e. the
//! whole receive → gather → re-code → forward hot path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use slicing_core::{
    DataMode, DestPlacement, GraphParams, OverlayAddr, Packet, RelayNode, SourceSession, Tick,
};

/// Wire offset of the `seq` header field (magic 2 + version 1 + kind 1 +
/// flow id 8).
const SEQ_OFFSET: usize = 12;

/// One established flow hosted by the benched relay: the wire bytes of a
/// template data message (one packet per parent) whose `seq` field gets
/// patched per iteration.
struct FlowTemplates {
    packets: Vec<(OverlayAddr, Vec<u8>)>,
}

/// Build `flows` independent small graphs, establish each one's first
/// stage-1 flow on a single relay node, and capture per-flow data-packet
/// templates.
fn establish(flows: usize) -> (RelayNode, Vec<FlowTemplates>) {
    let params = GraphParams::new(3, 2)
        .with_paths(2)
        .with_data_mode(DataMode::Recode)
        .with_dest_placement(DestPlacement::LastStage);
    let pseudo: Vec<OverlayAddr> = (0..2u64).map(|i| OverlayAddr(10_000 + i)).collect();
    let candidates: Vec<OverlayAddr> = (0..16u64).map(|i| OverlayAddr(20_000 + i)).collect();
    let mut relay = RelayNode::new(OverlayAddr(42), 7);
    let mut templates = Vec::with_capacity(flows);
    for f in 0..flows {
        let (mut source, setup) = SourceSession::establish(
            params,
            &pseudo,
            &candidates,
            OverlayAddr(1),
            1000 + f as u64,
        )
        .expect("valid params");
        let target = source.graph().stages[1][0];
        for instr in setup {
            if instr.to == target {
                relay.handle_packet(Tick(0), instr.from, &instr.packet);
            }
        }
        let payload = vec![0xA5u8; 1200];
        let (_, sends) = source.send_message(&payload);
        let packets = sends
            .into_iter()
            .filter(|s| s.to == target)
            .map(|s| (s.from, s.packet.encode().to_vec()))
            .collect();
        templates.push(FlowTemplates { packets });
    }
    assert_eq!(
        relay.stats().flows_established,
        flows as u64,
        "all benched flows must establish"
    );
    (relay, templates)
}

fn relay_data_plane(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay_data_plane");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    for flows in [1usize, 64, 1024] {
        let (mut relay, mut templates) = establish(flows);
        // Two parent packets per message = two handle_packet calls/iter.
        group.throughput(Throughput::Elements(2));
        let mut seq: u32 = 1;
        let mut next = 0usize;
        group.bench_with_input(
            BenchmarkId::new("handle_packet", flows),
            &flows,
            |b, _| {
                b.iter(|| {
                    let t = &mut templates[next];
                    next = (next + 1) % flows;
                    seq = seq.wrapping_add(1);
                    let mut outputs = 0usize;
                    for (from, bytes) in &mut t.packets {
                        bytes[SEQ_OFFSET..SEQ_OFFSET + 4].copy_from_slice(&seq.to_le_bytes());
                        let packet = Packet::decode(bytes).expect("valid template");
                        let out = relay.handle_packet(Tick(1), *from, &packet);
                        outputs += out.sends.len();
                    }
                    black_box(outputs)
                });
            },
        );
    }
    group.finish();

    // poll() with nothing expired: the per-tick cost a daemon pays every
    // 50 ms regardless of traffic.
    let mut group = c.benchmark_group("relay_poll_idle");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(400));
    group.warm_up_time(std::time::Duration::from_millis(100));
    for flows in [1usize, 64, 1024] {
        let (mut relay, _templates) = establish(flows);
        group.bench_with_input(BenchmarkId::new("poll", flows), &flows, |b, _| {
            b.iter(|| black_box(relay.poll(Tick(100)).sends.len()));
        });
    }
    group.finish();
}

criterion_group!(benches, relay_data_plane);
criterion_main!(benches);
