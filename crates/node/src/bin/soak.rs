//! Churn soak: a multi-process overlay on localhost, driven to many
//! thousands of sessions while relay processes are SIGKILLed and
//! restarted on a [`slicing_sim::churn::ChurnModel`] schedule.
//!
//! The driver hosts the session plane in-process (source endpoints
//! over `d′` pseudo-source UDP ports); relays and destinations are
//! `slicing-node` child processes managed by
//! [`slicing_node::orchestrator::Fleet`]. Every session streams one
//! message to a stable destination process and waits for the
//! end-to-end ack; stragglers get speculative graph repairs.
//!
//! Asserted fleet-wide invariants (exit 1 on violation):
//!
//! - zero wedged streams — every session acks within its deadline;
//! - delivered == acked everywhere — the destinations' scraped
//!   `slicing_dest_delivered_msgs_total` sums exactly to the driver's
//!   acked count (no atomics-vs-exposition drift, no lost or
//!   double-counted deliveries across kills);
//! - bounded RSS — no process grows past a fixed ceiling (flow GC and
//!   bounded queues actually bound memory over the run).
//!
//! The latency/throughput trajectory lands in `BENCH_soak.json`
//! (override with `SOAK_OUT`). `SOAK_QUICK=1` runs the CI-sized soak
//! (2 000 sessions); the default is the full 100 000-session run.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use slicing_core::{RelayConfig, SessionConfig};
use slicing_core::{SessionId, SessionManager, SourceConfig, SourceSession};
use slicing_graph::{DestPlacement, GraphParams, OverlayAddr};
use slicing_node::config::{NodeConfig, Roles, TransportKind};
use slicing_node::orchestrator::{free_tcp_port, free_udp_port, Fleet};
use slicing_node::runtime::data_addr;
use slicing_overlay::daemon::{spawn_node, NodeSpec, SessionEvent};
use slicing_overlay::{UdpFaults, UdpNet};
use slicing_sim::churn::ChurnModel;
use std::collections::HashMap;
use std::time::{Duration, Instant};
use tokio::sync::mpsc;

const SEED: u64 = 0x50A4;
/// Concurrent in-flight sessions.
const CONCURRENCY: usize = 32;
/// Sessions per recorded batch.
const BATCH: usize = 250;
/// A session older than this gets speculative repair nudges.
const NUDGE_AFTER: Duration = Duration::from_secs(3);
/// A session older than this is wedged (counted, session abandoned).
const SESSION_DEADLINE: Duration = Duration::from_secs(120);
/// Per-process RSS ceiling (bytes).
const RSS_CEILING: u64 = 400 * 1024 * 1024;
/// Restart a killed process this many launched sessions later.
const RESTART_GRACE_SESSIONS: usize = 100;

/// One child process of the soak fleet.
struct Proc {
    fleet_idx: usize,
    data_port: u16,
    /// Stable processes host the destinations and are never killed.
    stable: bool,
    up: bool,
    kills: usize,
}

struct Batch {
    acked: usize,
    p50_ms: f64,
    p95_ms: f64,
    throughput_sps: f64,
    fleet_rss_bytes: u64,
}

struct SoakReport {
    acked: usize,
    wedged: usize,
    repairs: usize,
    elapsed_s: f64,
    latencies_ms: Vec<f64>,
    batches: Vec<Batch>,
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

fn relay_tuning() -> RelayConfig {
    RelayConfig {
        setup_flush_ms: 200,
        data_flush_ms: 100,
        // Aggressive GC: the RSS bound depends on closed flows leaving.
        flow_ttl_ms: 10_000,
        max_pending_data: 64,
        max_flows: 16_384,
        keepalive_ms: 250,
        liveness_timeout_ms: 1_000,
    }
}

fn session_tuning() -> SessionConfig {
    SessionConfig {
        retransmit_ms: 800,
        ack_interval_ms: 150,
        ..SessionConfig::default()
    }
}

fn main() {
    let quick = std::env::var("SOAK_QUICK").is_ok_and(|v| v == "1");
    let total_sessions: usize = std::env::var("SOAK_SESSIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2_000 } else { 100_000 });
    let out_path = std::env::var("SOAK_OUT").unwrap_or_else(|_| "BENCH_soak.json".to_string());

    // Fleet layout: 2 stable relay+dest processes, 8 churnable
    // relay-only processes. Graphs are L=2, d=2, d′=3 (6 relays per
    // session), so even two concurrently-down churnables leave enough
    // candidates to establish.
    let dir = std::env::temp_dir().join(format!("slicing-soak-{}", std::process::id()));
    let bin = Fleet::sibling_binary().expect("locate slicing-node binary");
    let mut fleet = Fleet::new(dir.clone(), bin).expect("create fleet dir");
    let mut procs: Vec<Proc> = Vec::new();
    for i in 0..10 {
        let stable = i < 2;
        let data_port = free_udp_port();
        let cfg = NodeConfig {
            listen: data_port,
            metrics_listen: free_tcp_port(),
            roles: Roles {
                relay: true,
                dest: stable,
                session: false,
            },
            relay_shards: 2,
            seed: SEED + i as u64,
            transport: TransportKind::Udp,
            relay: relay_tuning(),
            session: session_tuning(),
            ..NodeConfig::default()
        };
        let name = if stable {
            format!("stable-{i}")
        } else {
            format!("churn-{i}")
        };
        let fleet_idx = fleet.add(&name, cfg).expect("write node config");
        fleet.spawn(fleet_idx).expect("spawn node");
        procs.push(Proc {
            fleet_idx,
            data_port,
            stable,
            up: true,
            kills: 0,
        });
    }
    for proc in &procs {
        assert!(
            fleet.wait_healthy(proc.fleet_idx, Duration::from_secs(10)),
            "node {} never became healthy (log: {})",
            proc.fleet_idx,
            fleet.log_path(proc.fleet_idx).display()
        );
    }

    // Kill schedule: §8.2 lifetimes mapped onto the session timeline,
    // padded to the CI floor of two mid-run kills.
    let mut rng = StdRng::seed_from_u64(SEED);
    let churn = ChurnModel::with_failure_probability(0.6, 30.0);
    let churnable: Vec<usize> = (0..procs.len()).filter(|&i| !procs[i].stable).collect();
    let mut kills: Vec<(usize, usize)> = churn
        .kill_schedule(churnable.len(), &mut rng)
        .into_iter()
        .enumerate()
        .filter_map(|(i, frac)| {
            frac.map(|f| {
                let due = ((f * total_sessions as f64) as usize).clamp(1, total_sessions - 1);
                (due, churnable[i])
            })
        })
        .collect();
    if kills.len() < 2 {
        kills.push((total_sessions * 3 / 10, churnable[0]));
        kills.push((total_sessions * 6 / 10, churnable[1]));
    }
    kills.sort_unstable();
    eprintln!(
        "soak: {total_sessions} sessions, {} processes, {} scheduled kills{}",
        procs.len(),
        kills.len(),
        if quick { " (quick mode)" } else { "" }
    );

    let runtime = tokio::runtime::Builder::new_multi_thread()
        .enable_all()
        .build()
        .expect("build tokio runtime");
    let report = runtime.block_on(run_soak(&mut fleet, &mut procs, kills, total_sessions));

    // Post-run: the fleet must be fully restartable and scrapeable.
    let mut delivered_total = 0.0;
    let mut max_rss: u64 = 0;
    let mut rss_violation = None;
    let mut fleet_garbage = 0.0;
    for proc in procs.iter() {
        let metrics = fleet.scrape(proc.fleet_idx).expect("scrape node after soak");
        delivered_total += metrics
            .get("slicing_dest_delivered_msgs_total")
            .copied()
            .unwrap_or(0.0);
        fleet_garbage += metrics.get("slicing_relay_garbage").copied().unwrap_or(0.0);
        let rss = metrics
            .get("slicing_process_rss_bytes")
            .copied()
            .unwrap_or(0.0) as u64;
        max_rss = max_rss.max(rss);
        if rss > RSS_CEILING {
            rss_violation = Some((proc.fleet_idx, rss));
        }
    }

    // The benchmark artifact.
    let kills_done: usize = procs.iter().map(|p| p.kills).sum();
    let mut all_ms: Vec<f64> = report.latencies_ms.clone();
    all_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    std::fs::write(
        &out_path,
        json_report(
            quick,
            total_sessions,
            procs.len(),
            kills_done,
            &report,
            &all_ms,
            max_rss,
            delivered_total,
            fleet_garbage,
        ),
    )
    .expect("write BENCH_soak.json");
    eprintln!("soak: wrote {out_path}");

    // Clean fleet teardown (also exercises the stdin-EOF shutdown).
    let mut clean = 0;
    for idx in 0..fleet.len() {
        if fleet.shutdown(idx, Duration::from_secs(5)) {
            clean += 1;
        }
    }
    eprintln!("soak: {clean}/{} clean shutdowns", procs.len());
    let _ = std::fs::remove_dir_all(&dir);

    // Invariants.
    let mut failed = false;
    if report.wedged > 0 {
        eprintln!(
            "FAIL: {} wedged sessions (of {total_sessions})",
            report.wedged
        );
        failed = true;
    }
    if report.acked != total_sessions {
        eprintln!("FAIL: acked {} != sessions {total_sessions}", report.acked);
        failed = true;
    }
    if delivered_total as usize != report.acked {
        eprintln!(
            "FAIL: fleet delivered {} != driver acked {} (metrics drift)",
            delivered_total, report.acked
        );
        failed = true;
    }
    if let Some((idx, rss)) = rss_violation {
        eprintln!("FAIL: node {idx} RSS {rss} bytes exceeds ceiling {RSS_CEILING}");
        failed = true;
    }
    if kills_done < 2 {
        eprintln!("FAIL: only {kills_done} kills executed (need >= 2)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    eprintln!(
        "soak OK: {} sessions acked, {} kills+restarts, p50 {:.0} ms, p95 {:.0} ms, max RSS {} MiB",
        report.acked,
        kills_done,
        percentile(&all_ms, 0.50),
        percentile(&all_ms, 0.95),
        max_rss / (1024 * 1024),
    );
}

#[allow(clippy::too_many_arguments)]
fn json_report(
    quick: bool,
    sessions: usize,
    processes: usize,
    kills: usize,
    report: &SoakReport,
    all_ms: &[f64],
    max_rss: u64,
    delivered: f64,
    garbage: f64,
) -> String {
    let batches: Vec<String> = report
        .batches
        .iter()
        .enumerate()
        .map(|(i, b)| {
            format!(
                "    {{\"batch\": {i}, \"acked\": {}, \"p50_ms\": {:.1}, \"p95_ms\": {:.1}, \
                 \"throughput_sps\": {:.1}, \"fleet_rss_bytes\": {}}}",
                b.acked, b.p50_ms, b.p95_ms, b.throughput_sps, b.fleet_rss_bytes
            )
        })
        .collect();
    format!(
        "{{\n  \"benchmark\": \"churn_soak\",\n  \"mode\": \"{mode}\",\n  \"transport\": \"udp\",\n  \
         \"sessions\": {sessions},\n  \"processes\": {processes},\n  \"kills\": {kills},\n  \
         \"restarts\": {kills},\n  \"wedged\": {wedged},\n  \"acked\": {acked},\n  \
         \"repairs\": {repairs},\n  \"elapsed_s\": {elapsed:.1},\n  \
         \"p50_ms\": {p50:.1},\n  \"p95_ms\": {p95:.1},\n  \
         \"throughput_sps\": {tput:.1},\n  \"max_process_rss_bytes\": {max_rss},\n  \
         \"fleet_delivered_msgs\": {delivered},\n  \"fleet_relay_garbage\": {garbage},\n  \
         \"batches\": [\n{batches}\n  ]\n}}\n",
        mode = if quick { "quick" } else { "full" },
        wedged = report.wedged,
        acked = report.acked,
        repairs = report.repairs,
        elapsed = report.elapsed_s,
        p50 = percentile(all_ms, 0.50),
        p95 = percentile(all_ms, 0.95),
        tput = report.acked as f64 / report.elapsed_s.max(0.001),
        batches = batches.join(",\n"),
    )
}

/// The async soak body: launch sessions against the fleet, execute the
/// kill/restart schedule, collect acks.
async fn run_soak(
    fleet: &mut Fleet,
    procs: &mut [Proc],
    kills: Vec<(usize, usize)>,
    total_sessions: usize,
) -> SoakReport {
    let params = GraphParams::new(2, 2)
        .with_paths(3)
        .with_dest_placement(DestPlacement::LastStage);
    let session_cfg = session_tuning();
    let source_cfg = SourceConfig {
        keepalive_ms: relay_tuning().keepalive_ms,
        ..SourceConfig::default()
    };

    // The driver's session plane: d′ pseudo-source ports on a clean
    // (fault-free) UDP net.
    let net = UdpNet::new(UdpFaults::default(), SEED ^ 0xD21);
    let mut pseudo_ports = Vec::new();
    for _ in 0..params.paths {
        let port = free_udp_port();
        pseudo_ports.push(net.attach_at(port).await.expect("attach pseudo port"));
    }
    let pseudo_addrs: Vec<OverlayAddr> = pseudo_ports.iter().map(|p| p.addr).collect();
    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let (session_events_tx, mut session_events_rx) = mpsc::unbounded_channel();
    let driver = spawn_node(NodeSpec {
        relay: None,
        sessions: Some(SessionManager::new(2, CONCURRENCY * 4, session_cfg)),
        ports: pseudo_ports,
        dest_sessions: None,
        events: events_tx,
        session_events: Some(session_events_tx),
        epoch: tokio::time::Instant::now(),
    });
    tokio::spawn(async move { while events_rx.recv().await.is_some() {} });
    let sessions = driver.sessions.clone().expect("driver hosts sessions");

    let mut rng = StdRng::seed_from_u64(SEED ^ 0xFACE);
    let mut kills = kills.into_iter().peekable();
    let mut restarts: Vec<(usize, usize)> = Vec::new(); // (due session, proc)
    let mut inflight: HashMap<SessionId, Instant> = HashMap::new();
    let mut launched = 0usize;
    let mut report = SoakReport {
        acked: 0,
        wedged: 0,
        repairs: 0,
        elapsed_s: 0.0,
        latencies_ms: Vec::new(),
        batches: Vec::new(),
    };
    let start = Instant::now();
    let mut batch_start = Instant::now();
    let mut batch_ms: Vec<f64> = Vec::new();
    let mut tick = tokio::time::interval(Duration::from_millis(500));

    while report.acked + report.wedged < total_sessions {
        // Execute due kills (schedule positions are measured in
        // launched sessions); a kill is deferred while two processes
        // are already down so establishment keeps enough candidates.
        while let Some(&(due, proc_idx)) = kills.peek() {
            if due > launched {
                break;
            }
            kills.next();
            let down = procs.iter().filter(|p| !p.up).count();
            if down >= 2 {
                restarts.push((launched + RESTART_GRACE_SESSIONS, proc_idx));
                continue;
            }
            let proc = &mut procs[proc_idx];
            if proc.up {
                fleet.kill(proc.fleet_idx);
                proc.up = false;
                proc.kills += 1;
                eprintln!("soak: killed node {} at session {launched}", proc.fleet_idx);
                restarts.push((launched + RESTART_GRACE_SESSIONS, proc_idx));
            }
        }
        let due_restarts: Vec<usize> = restarts
            .iter()
            .filter(|&&(due, _)| due <= launched)
            .map(|&(_, p)| p)
            .collect();
        restarts.retain(|&(due, _)| due > launched);
        for proc_idx in due_restarts {
            let proc = &mut procs[proc_idx];
            if !proc.up {
                fleet.spawn(proc.fleet_idx).expect("respawn node");
                if fleet.wait_healthy(proc.fleet_idx, Duration::from_secs(10)) {
                    proc.up = true;
                    eprintln!(
                        "soak: restarted node {} at session {launched}",
                        proc.fleet_idx
                    );
                }
            }
        }

        // Top the in-flight window up.
        while inflight.len() < CONCURRENCY && launched < total_sessions {
            let dest_proc = launched % 2; // round-robin over the stable pair
            let dest = data_addr(procs[dest_proc].data_port);
            let candidates: Vec<OverlayAddr> = procs
                .iter()
                .enumerate()
                .filter(|(i, p)| p.up && *i != dest_proc)
                .map(|(_, p)| data_addr(p.data_port))
                .collect();
            let Ok((mut source, setup)) = SourceSession::establish(
                params,
                &pseudo_addrs,
                &candidates,
                dest,
                SEED ^ (launched as u64).wrapping_mul(0x9E37_79B9),
            ) else {
                // Not enough live candidates right now; let the event
                // loop below make progress and retry.
                break;
            };
            source.set_config(source_cfg);
            let mut payload = vec![0u8; 2_000];
            rng.fill_bytes(&mut payload);
            let id = sessions.open_source(source, setup).await;
            sessions.send(id, payload).await;
            inflight.insert(id, Instant::now());
            launched += 1;
        }

        tokio::select! {
            ev = session_events_rx.recv() => match ev {
                Some(SessionEvent::Acked { session, .. }) => {
                    if let Some(started) = inflight.remove(&session) {
                        let ms = started.elapsed().as_secs_f64() * 1_000.0;
                        report.latencies_ms.push(ms);
                        batch_ms.push(ms);
                        report.acked += 1;
                        sessions.close(session).await;
                        if report.acked.is_multiple_of(BATCH) {
                            let elapsed = batch_start.elapsed().as_secs_f64();
                            batch_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                            let fleet_rss = procs
                                .iter()
                                .filter(|p| p.up)
                                .filter_map(|p| fleet.scrape(p.fleet_idx).ok())
                                .filter_map(|m| {
                                    m.get("slicing_process_rss_bytes").map(|v| *v as u64)
                                })
                                .sum();
                            report.batches.push(Batch {
                                acked: batch_ms.len(),
                                p50_ms: percentile(&batch_ms, 0.50),
                                p95_ms: percentile(&batch_ms, 0.95),
                                throughput_sps: batch_ms.len() as f64 / elapsed.max(0.001),
                                fleet_rss_bytes: fleet_rss,
                            });
                            eprintln!(
                                "soak: {}/{} acked, batch p50 {:.0} ms p95 {:.0} ms, fleet RSS {} MiB",
                                report.acked,
                                total_sessions,
                                percentile(&batch_ms, 0.50),
                                percentile(&batch_ms, 0.95),
                                fleet_rss / (1024 * 1024),
                            );
                            batch_ms.clear();
                            batch_start = Instant::now();
                        }
                    }
                }
                Some(SessionEvent::Repaired { .. }) => report.repairs += 1,
                Some(SessionEvent::Rejected { session, error, .. }) => {
                    eprintln!("soak: session {session:?} rejected: {error}");
                }
                Some(_) => {}
                None => break,
            },
            _ = tick.tick() => {
                // Nudge stragglers: speculative repair around any
                // relays reported dead, drawn from the live fleet.
                let pool: Vec<OverlayAddr> = procs
                    .iter()
                    .filter(|p| p.up)
                    .map(|p| data_addr(p.data_port))
                    .collect();
                let now = Instant::now();
                let mut wedged = Vec::new();
                for (&id, &started) in &inflight {
                    if now.duration_since(started) > SESSION_DEADLINE {
                        wedged.push(id);
                    } else if now.duration_since(started) > NUDGE_AFTER {
                        sessions.repair(id, pool.clone()).await;
                    }
                }
                for id in wedged {
                    inflight.remove(&id);
                    report.wedged += 1;
                    sessions.close(id).await;
                    eprintln!("soak: session {id:?} wedged (no ack in {SESSION_DEADLINE:?})");
                }
            }
        }
    }
    report.elapsed_s = start.elapsed().as_secs_f64();
    // Bring any still-down process back before the post-run scrape:
    // the fleet must end fully restarted and scrapeable.
    for proc in procs.iter_mut() {
        if !proc.up {
            fleet.spawn(proc.fleet_idx).expect("respawn node");
            assert!(
                fleet.wait_healthy(proc.fleet_idx, Duration::from_secs(10)),
                "node {} unhealthy after final restart",
                proc.fleet_idx
            );
            proc.up = true;
        }
    }
    driver.abort();
    report
}
