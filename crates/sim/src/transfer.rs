//! Session-level churn experiments (Fig. 17), driven through the real
//! protocol engines.
//!
//! "Given PlanetLab churn rate and failures, what is the probability of
//! successfully completing a session that takes 30 minutes?" (§8.2).
//! Each trial builds a real forwarding graph (or onion circuits), assigns
//! every relay a failure time from the churn model, sends a train of
//! messages across the session, killing nodes as their time comes, and
//! asks whether the whole transfer completed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use slicing_core::testnet::TestNet;
use slicing_core::{DestPlacement, GraphParams, OverlayAddr, SourceSession};
use slicing_onion::{Directory, ErasureOnionSource, OnionRelay};

use crate::churn::ChurnModel;

/// Outcome counters of a batch of session trials.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionOutcome {
    /// Trials attempted.
    pub trials: usize,
    /// Trials in which every message of the session was delivered.
    pub successes: usize,
}

impl SessionOutcome {
    /// Success probability.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }
}

/// Parameters of a Fig.-17 churn experiment.
#[derive(Clone, Copy, Debug)]
pub struct ChurnExperiment {
    /// Path length `L`.
    pub length: usize,
    /// Split factor `d`.
    pub split: usize,
    /// Paths `d′`.
    pub paths: usize,
    /// Churn model (per-session failure probability of each relay).
    pub churn: ChurnModel,
    /// Messages sent across the session (checkpoints at which failures
    /// take effect).
    pub messages: usize,
}

impl ChurnExperiment {
    /// Added redundancy `R`.
    pub fn redundancy(&self) -> f64 {
        (self.paths - self.split) as f64 / self.split as f64
    }

    /// One slicing session through the real engine: graph + relays +
    /// failures injected between messages.
    pub fn slicing_session(&self, seed: u64) -> bool {
        let mut rng = StdRng::seed_from_u64(seed);
        let dp = self.paths;
        let pseudo: Vec<OverlayAddr> = (0..dp as u64).map(|i| OverlayAddr(1_000 + i)).collect();
        let candidates: Vec<OverlayAddr> = (0..(self.length * dp + 4) as u64)
            .map(|i| OverlayAddr(10_000 + i))
            .collect();
        let dest = OverlayAddr(1);
        let mut all = candidates.clone();
        all.push(dest);
        let params = GraphParams::new(self.length, self.split)
            .with_paths(dp)
            .with_dest_placement(DestPlacement::LastStage);
        let Ok((mut source, setup)) =
            SourceSession::establish(params, &pseudo, &candidates, dest, rng.gen())
        else {
            return false;
        };
        let mut net = TestNet::new(&all, rng.gen());
        net.submit(setup);
        net.run_to_quiescence(Some(&mut source));

        // Assign failure times (in message-index units) to every relay on
        // the graph except the destination.
        let session = self.churn.session_minutes;
        let mut failures: Vec<(f64, OverlayAddr)> = Vec::new();
        for addr in source.graph().relay_addrs() {
            if addr == dest {
                continue;
            }
            let node = self.churn.sample_node(&mut rng);
            if let Some(t) = node.sample_failure(session, &mut rng) {
                failures.push((t / session, addr));
            }
        }
        failures.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

        let mut fail_idx = 0;
        let mut delivered = 0usize;
        for m in 0..self.messages {
            let progress = m as f64 / self.messages as f64;
            while fail_idx < failures.len() && failures[fail_idx].0 <= progress {
                net.fail(failures[fail_idx].1);
                fail_idx += 1;
            }
            let (_, sends) = source.send_message(format!("chunk {m}").as_bytes()).expect("within chunk budget");
            net.submit(sends);
            // Failures in k consecutive stages need k timeout-flush
            // rounds to drain (§4.4.1 regeneration is timeout-driven at
            // each cut); give the cascade the full depth.
            net.settle(Some(&mut source), 1_200, self.length + 1);
            let got = net.messages_for(dest);
            if got.len() > delivered {
                delivered = got.len();
            }
        }
        delivered == self.messages
    }

    /// One onion-with-erasure-codes session: `d′` disjoint circuits, no
    /// in-network regeneration — once a circuit loses a node it is dead
    /// for the rest of the session (§8.1).
    pub fn onion_ec_session(&self, seed: u64) -> bool {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0111);
        let mut dir = Directory::new();
        let dest = OverlayAddr(999);
        let mut relays = std::collections::HashMap::new();
        let kp = dir.register(dest, 256, &mut rng);
        relays.insert(dest, OnionRelay::new(dest, kp));
        // d' disjoint paths of length L (sharing only the exit).
        let mut paths = Vec::new();
        for p in 0..self.paths as u64 {
            let mut path: Vec<OverlayAddr> = (0..(self.length - 1) as u64)
                .map(|h| OverlayAddr(2_000 + p * 100 + h))
                .collect();
            for &a in &path {
                let kp = dir.register(a, 256, &mut rng);
                relays.insert(a, OnionRelay::new(a, kp));
            }
            path.push(dest);
            paths.push(path);
        }
        let Ok((mut src, setups)) =
            ErasureOnionSource::build(OverlayAddr(1), &paths, self.split, &dir, &mut rng)
        else {
            return false;
        };
        // Deliver setups.
        let mut dead: Vec<OverlayAddr> = Vec::new();
        let drive = |relays: &mut std::collections::HashMap<OverlayAddr, OnionRelay>,
                     dead: &[OverlayAddr],
                     sends: Vec<slicing_onion::OnionSend>|
         -> Vec<(u32, Vec<u8>)> {
            let mut delivered = Vec::new();
            let mut queue = sends;
            while let Some(send) = queue.pop() {
                if dead.contains(&send.to) {
                    continue;
                }
                let Some(relay) = relays.get_mut(&send.to) else {
                    continue;
                };
                let out = relay.handle_packet(&send.packet);
                queue.extend(out.sends);
                delivered.extend(out.delivered);
            }
            delivered
        };
        drive(&mut relays, &dead, setups);

        // Failure schedule over the relays (not the exit/destination).
        let session = self.churn.session_minutes;
        let mut failures: Vec<(f64, OverlayAddr)> = Vec::new();
        for &addr in relays.keys() {
            if addr == dest {
                continue;
            }
            let node = self.churn.sample_node(&mut rng);
            if let Some(t) = node.sample_failure(session, &mut rng) {
                failures.push((t / session, addr));
            }
        }
        failures.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

        let mut exit = slicing_onion::erasure::ErasureExit::new(self.split);
        let mut fail_idx = 0;
        for m in 0..self.messages {
            let progress = m as f64 / self.messages as f64;
            while fail_idx < failures.len() && failures[fail_idx].0 <= progress {
                dead.push(failures[fail_idx].1);
                fail_idx += 1;
            }
            let (seq, sends) = src.send_message(format!("chunk {m}").as_bytes(), &mut rng);
            let payloads = drive(&mut relays, &dead, sends);
            let mut ok = false;
            for (s, p) in payloads {
                if s == seq && exit.feed(s, &p).is_some() {
                    ok = true;
                }
            }
            if !ok {
                return false;
            }
        }
        true
    }

    /// Standard onion routing: a single path; the session completes iff
    /// no relay on it fails.
    pub fn standard_onion_session(&self, seed: u64) -> bool {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0222);
        let session = self.churn.session_minutes;
        for _hop in 0..self.length {
            let node = self.churn.sample_node(&mut rng);
            if node.sample_failure(session, &mut rng).is_some() {
                return false;
            }
        }
        true
    }

    /// Run `trials` sessions of each scheme.
    pub fn run(&self, trials: usize, seed: u64) -> (SessionOutcome, SessionOutcome, SessionOutcome) {
        let mut slicing = SessionOutcome::default();
        let mut onion_ec = SessionOutcome::default();
        let mut onion = SessionOutcome::default();
        for t in 0..trials {
            let s = seed.wrapping_add(t as u64).wrapping_mul(0x9E3779B97F4A7C15);
            slicing.trials += 1;
            slicing.successes += usize::from(self.slicing_session(s));
            onion_ec.trials += 1;
            onion_ec.successes += usize::from(self.onion_ec_session(s));
            onion.trials += 1;
            onion.successes += usize::from(self.standard_onion_session(s));
        }
        (slicing, onion_ec, onion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment(d: usize, dp: usize, p: f64) -> ChurnExperiment {
        ChurnExperiment {
            length: 5,
            split: d,
            paths: dp,
            churn: ChurnModel::with_failure_probability(p, 30.0),
            messages: 5,
        }
    }

    #[test]
    fn no_churn_all_succeed() {
        let e = experiment(2, 2, 0.0);
        assert!(e.slicing_session(1));
        assert!(e.onion_ec_session(1));
        assert!(e.standard_onion_session(1));
    }

    #[test]
    fn slicing_with_redundancy_beats_standard_onion() {
        let e = experiment(2, 3, 0.15);
        let (s, _ec, o) = e.run(30, 7);
        assert!(
            s.rate() > o.rate(),
            "slicing {} must beat standard onion {}",
            s.rate(),
            o.rate()
        );
    }

    #[test]
    fn slicing_matches_analytic_roughly() {
        // The packet-level simulation should land near Eq. 7 (it can be
        // slightly better: recoding shares rank across stages).
        let e = experiment(2, 3, 0.1);
        let (s, ..) = e.run(60, 11);
        let analytic = crate::analysis::slicing_success(5, 2, 3, 0.1);
        assert!(
            (s.rate() - analytic).abs() < 0.22,
            "sim {} vs Eq.7 {}",
            s.rate(),
            analytic
        );
    }

    #[test]
    fn heavy_churn_sinks_standard_onion() {
        let e = experiment(2, 4, 0.3);
        let (s, ec, o) = e.run(30, 13);
        assert!(o.rate() < 0.4, "standard onion should mostly fail");
        // Slicing with R=1 should do clearly better than standard onion.
        assert!(s.rate() > o.rate());
        // And at least as well as onion+EC.
        assert!(s.rate() >= ec.rate() - 0.1);
    }
}
