//! HMAC-SHA-256 (RFC 2104), with precomputed-midstate keys.
//!
//! [`hmac_sha256`] is the stateless two-pass reference. [`HmacKey`]
//! precomputes the SHA-256 compression states after absorbing the
//! ipad/opad blocks once per key, so every subsequent [`HmacKey::mac`]
//! skips two compressions — the per-message win that, together with the
//! AEAD's cached subkeys, removes ~6 compressions per sealed message.

use crate::sha256::{self, Sha256};
use crate::simd::{self, Backend};

const BLOCK: usize = 64;

/// An HMAC-SHA256 key with the ipad/opad block compressions already
/// applied. Construction costs two compressions; each [`HmacKey::mac`]
/// afterwards resumes from the stored midstates instead of re-absorbing
/// the padded key.
#[derive(Clone)]
pub struct HmacKey {
    /// Compression state after `IV ← ipad-block` (64 bytes absorbed).
    inner: [u32; 8],
    /// Compression state after `IV ← opad-block` (64 bytes absorbed).
    outer: [u32; 8],
    backend: Backend,
}

impl HmacKey {
    /// Prepare a key on the process-wide detected backend.
    pub fn new(key: &[u8]) -> Self {
        Self::new_on(simd::backend(), key)
    }

    /// Prepare a key pinned to a specific [`Backend`].
    pub fn new_on(backend: Backend, key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK];
        if key.len() > BLOCK {
            k[..32].copy_from_slice(&Sha256::digest_on(backend, key));
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK];
        let mut opad = [0x5cu8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] ^= k[i];
            opad[i] ^= k[i];
        }
        let mut inner = sha256::IV;
        sha256::compress_blocks(backend, &mut inner, &ipad);
        let mut outer = sha256::IV;
        sha256::compress_blocks(backend, &mut outer, &opad);
        HmacKey {
            inner,
            outer,
            backend,
        }
    }

    /// Compute `HMAC-SHA256(key, data)` by resuming from the cached
    /// midstates.
    pub fn mac(&self, data: &[u8]) -> [u8; 32] {
        self.mac_parts(&[data])
    }

    /// As [`HmacKey::mac`] over the concatenation of `parts`, without
    /// materializing it (the HKDF expand loop authenticates
    /// `T(n-1) ‖ info ‖ counter` allocation-free with this).
    pub fn mac_parts(&self, parts: &[&[u8]]) -> [u8; 32] {
        let mut h = Sha256::from_midstate(self.backend, self.inner, BLOCK as u64);
        for part in parts {
            h.update(part);
        }
        let inner_digest = h.finalize();
        let mut o = Sha256::from_midstate(self.backend, self.outer, BLOCK as u64);
        o.update(&inner_digest);
        o.finalize()
    }
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Midstates are key-equivalent material; never print them.
        write!(f, "HmacKey(..)")
    }
}

/// Compute `HMAC-SHA256(key, data)` (one-shot; prefer [`HmacKey`] when
/// the same key authenticates many messages).
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; 32] {
    HmacKey::new(key).mac(data)
}

/// Constant-time comparison of two MACs.
pub fn verify(expected: &[u8; 32], actual: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for i in 0..32 {
        diff |= expected[i] ^ actual[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases, swept across every available backend via the
    // midstate path (hmac_sha256 delegates to HmacKey).
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        for backend in crate::simd::available_backends() {
            let mac = HmacKey::new_on(backend, &key).mac(b"Hi There");
            assert_eq!(
                hex(&mac),
                "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
                "{backend} backend"
            );
        }
    }

    #[test]
    fn rfc4231_case_2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed_first() {
        // RFC 4231 case 6: 131-byte key.
        let key = [0xaau8; 131];
        for backend in crate::simd::available_backends() {
            let mac = HmacKey::new_on(backend, &key)
                .mac(b"Test Using Larger Than Block-Size Key - Hash Key First");
            assert_eq!(
                hex(&mac),
                "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
                "{backend} backend"
            );
        }
    }

    #[test]
    fn cached_key_reusable_across_messages() {
        let key = HmacKey::new(b"reused-key");
        let a1 = key.mac(b"first message");
        let b1 = key.mac(b"second message");
        let a2 = hmac_sha256(b"reused-key", b"first message");
        let b2 = hmac_sha256(b"reused-key", b"second message");
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
        assert_ne!(a1, b1);
    }

    #[test]
    fn verify_accepts_equal_rejects_unequal() {
        let a = hmac_sha256(b"k", b"m");
        let mut b = a;
        assert!(verify(&a, &b));
        b[31] ^= 1;
        assert!(!verify(&a, &b));
    }
}
