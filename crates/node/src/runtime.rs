//! From a parsed [`NodeConfig`] to a running node.
//!
//! `run` attaches the configured transport, spawns the combined
//! relay/session daemon ([`spawn_node`]), brings the metrics endpoint
//! up, and then parks until a shutdown trigger:
//!
//! - `POST /shutdown` on the metrics port, or
//! - EOF on stdin — the orchestrator holds every child's stdin pipe
//!   open, so dropping it (or the orchestrator dying) shuts the fleet
//!   down without signal plumbing.
//!
//! Either trigger drains the daemon's ingress tasks cleanly
//! ([`slicing_overlay::daemon::NodeHandle::shutdown`]).

use crate::config::{NodeConfig, TransportKind};
use crate::metrics::{self, RegistryBuilder};
use slicing_core::{SessionManager, ShardedRelay};
use slicing_graph::OverlayAddr;
use slicing_overlay::daemon::{spawn_node, DestSessionSpec, NodeSpec};
use slicing_overlay::{TcpNet, UdpNet};
use tokio::sync::mpsc;
use tokio::time::Instant;

/// Bring the node up and park until shutdown. Returns the error when
/// a socket cannot be bound; otherwise returns after a clean exit.
pub async fn run(cfg: NodeConfig) -> std::io::Result<()> {
    // Transport: one data port at the configured address.
    let mut udp_net = None;
    let port = match cfg.transport {
        TransportKind::Udp => {
            let net = UdpNet::new(cfg.faults.to_faults(), cfg.seed);
            let port = net.attach_at(cfg.listen).await?;
            udp_net = Some(net);
            port
        }
        TransportKind::Tcp => TcpNet::attach_at(cfg.listen).await?,
    };
    let addr = port.addr;

    // Registry views are captured before the engines move into the
    // daemon (shared stats survive the move).
    let mut registry = RegistryBuilder::default().cc(port.tx.clone());
    if let Some(net) = &udp_net {
        registry = registry.udp(net.clone());
    }

    let relay = cfg.roles.relay.then(|| {
        ShardedRelay::with_config(addr, cfg.seed, cfg.relay, cfg.relay_shards)
    });
    if let Some(relay) = &relay {
        registry = registry.relay(relay.shared_stats());
    }
    let sessions = cfg
        .roles
        .session
        .then(|| SessionManager::new(cfg.session_shards, cfg.max_sessions, cfg.session));

    let (events_tx, mut events_rx) = mpsc::unbounded_channel();
    let (deliveries_tx, mut deliveries_rx) = mpsc::unbounded_channel();
    let (session_events_tx, mut session_events_rx) = mpsc::unbounded_channel();
    let dest_sessions = cfg.roles.dest.then(|| DestSessionSpec {
        config: cfg.session,
        seed: cfg.seed,
        deliveries: deliveries_tx.clone(),
    });

    let node = spawn_node(NodeSpec {
        relay,
        sessions,
        ports: vec![port],
        dest_sessions,
        events: events_tx,
        session_events: Some(session_events_tx),
        epoch: Instant::now(),
    });
    if let Some(handle) = &node.sessions {
        registry = registry.session(handle.clone());
    }
    let registry = registry.build();

    // Drain the event streams: deliveries feed the dest counters, the
    // rest would otherwise grow their unbounded queues forever.
    let delivery_registry = registry.clone();
    tokio::spawn(async move {
        while let Some(delivery) = deliveries_rx.recv().await {
            delivery_registry.record_delivery(delivery.payload.len());
        }
    });
    tokio::spawn(async move { while events_rx.recv().await.is_some() {} });
    tokio::spawn(async move { while session_events_rx.recv().await.is_some() {} });

    // Metrics endpoint + the shutdown channel it feeds.
    let (shutdown_tx, mut shutdown_rx) = mpsc::channel::<()>(1);
    let listener =
        tokio::net::TcpListener::bind(format!("127.0.0.1:{}", cfg.metrics_listen)).await?;
    let metrics_task = tokio::spawn(metrics::serve(
        listener,
        registry.clone(),
        shutdown_tx.clone(),
    ));

    // Stdin watcher: a plain OS thread (reading stdin must not block a
    // runtime worker) that trips the shutdown channel at EOF.
    let stdin_shutdown = shutdown_tx.clone();
    std::thread::spawn(move || {
        use std::io::Read;
        let mut sink = [0u8; 256];
        let mut stdin = std::io::stdin();
        while matches!(stdin.read(&mut sink), Ok(n) if n > 0) {}
        let _ = stdin_shutdown.try_send(());
    });

    println!(
        "slicing-node: up data=127.0.0.1:{} metrics=127.0.0.1:{} roles={:?}",
        cfg.listen, cfg.metrics_listen, cfg.roles
    );

    let _ = shutdown_rx.recv().await;
    metrics_task.abort();
    node.shutdown().await;
    println!("slicing-node: clean shutdown");
    Ok(())
}

/// The overlay address a node's data port occupies (loopback).
pub fn data_addr(port: u16) -> OverlayAddr {
    OverlayAddr::from_ipv4([127, 0, 0, 1], port)
}
