//! Async TCP built on `std::net` nonblocking sockets.
//!
//! There is no epoll reactor: would-block operations park on the timer
//! thread and retry on a 1 ms tick. That adds up to ~1 ms latency per
//! wait, which is well inside the loopback experiments' tolerances.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::time::Duration;

use crate::time::sleep;

const RETRY_TICK: Duration = Duration::from_millis(1);

/// A nonblocking TCP listener.
#[derive(Debug)]
pub struct TcpListener {
    inner: std::net::TcpListener,
}

impl TcpListener {
    /// Bind to `addr` (resolved synchronously; loopback binds are
    /// instantaneous).
    pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
        let inner = std::net::TcpListener::bind(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpListener { inner })
    }

    /// The bound local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    /// Accept one connection.
    pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
        loop {
            match self.inner.accept() {
                Ok((stream, peer)) => {
                    stream.set_nonblocking(true)?;
                    return Ok((TcpStream { inner: stream }, peer));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep(RETRY_TICK).await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// A nonblocking TCP stream.
#[derive(Debug)]
pub struct TcpStream {
    inner: std::net::TcpStream,
}

impl TcpStream {
    /// Connect to `addr`.
    ///
    /// The connect itself is performed synchronously — on the loopback
    /// paths this runtime serves, connection establishment either
    /// succeeds or is refused within microseconds.
    pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
        let inner = std::net::TcpStream::connect(addr)?;
        inner.set_nonblocking(true)?;
        Ok(TcpStream { inner })
    }

    /// Disable Nagle's algorithm.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.inner.set_nodelay(nodelay)
    }

    /// The peer's address.
    pub fn peer_addr(&self) -> io::Result<SocketAddr> {
        self.inner.peer_addr()
    }

    /// The local address.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.inner.local_addr()
    }

    pub(crate) async fn read_some(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        use std::io::Read;
        loop {
            match (&self.inner).read(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep(RETRY_TICK).await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    pub(crate) async fn write_some(&mut self, buf: &[u8]) -> io::Result<usize> {
        use std::io::Write;
        loop {
            match (&self.inner).write(buf) {
                Ok(n) => return Ok(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => sleep(RETRY_TICK).await,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}
