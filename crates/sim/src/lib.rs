//! Overlay churn and WAN simulation (§4.4, §8, §9.1).
//!
//! * [`analysis`] — the closed-form success probabilities of §8.1
//!   (Eqs. 6–7) for information slicing, onion routing with erasure
//!   codes, and standard onion routing.
//! * [`churn`] — node-lifetime models, including the "failure-prone,
//!   perceived lifetime under 20 minutes" PlanetLab population of §8.2.
//! * [`transfer`] — Fig.-17-style session experiments driven through the
//!   *real* protocol engines (`slicing-core` test net and the onion
//!   baseline), with failures injected mid-session.
//! * [`asmap`] — the §9.1 defence: a synthetic AS/prefix address space
//!   and AS-diverse relay selection, quantifying how much harder an
//!   address-concentrated attacker finds it to infiltrate a graph.
//! * [`wan`] — latency/loss profiles (LAN, PlanetLab-like WAN) consumed
//!   by the tokio overlay's emulated network.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod asmap;
pub mod churn;
pub mod transfer;
pub mod wan;

pub use analysis::{onion_ec_success, slicing_success, standard_onion_success};
pub use churn::{ChurnModel, NodeLifetime};
pub use transfer::{ChurnExperiment, SessionOutcome};
pub use wan::NetProfile;
