//! Fig. 10: anonymity vs added redundancy R = (d′−d)/d
//! (d = 3, L = 8, f = 0.1).

use slicing_anonymity::montecarlo::average_anonymity;
use slicing_anonymity::ScenarioParams;
use slicing_bench::{banner, RunOpts, Table};

fn main() {
    let opts = RunOpts::from_args();
    let trials = opts.trials(1000);
    banner(
        "Figure 10 — anonymity vs added redundancy",
        "d=3, L=8, f=0.1, d' = 3..10",
        "destination anonymity decreases with redundancy; source \
         anonymity is largely unaffected",
    );
    let mut table = Table::new(&["redundancy", "src_anonymity", "dst_anonymity"]);
    for dp in 3..=10usize {
        let p = ScenarioParams::new(10_000, 8, 3, 0.1).with_width(dp);
        let e = average_anonymity(&p, trials, opts.seed);
        table.row(&[p.redundancy(), e.source, e.dest]);
    }
    table.print();
}
