//! The tokio overlay runtime: the Rust equivalent of the paper's
//! PlanetLab prototype (§7.1) — relay daemons, a source utility, and
//! three transports behind one interface:
//!
//! * [`emu::EmulatedNet`] — an in-process network that enforces per-link
//!   propagation delay, per-node and per-link bandwidth, host load delay
//!   and loss, parameterized by [`slicing_sim::wan::NetProfile`]
//!   (LAN / PlanetLab substitutes; see DESIGN.md).
//! * [`tcp::TcpNet`] — real TCP sockets on loopback, for hardware-honest
//!   local-area numbers.
//! * [`udp::UdpNet`] — real UDP datagrams on loopback: the transport the
//!   paper's data plane assumes, with per-neighbour delay-gradient
//!   congestion control ([`cc`]), wheel-driven pacing and
//!   `sendmmsg`-shaped batched egress.
//!
//! The daemons drive the *sans-IO* engines from `slicing-core` and
//! `slicing-onion`; nothing protocol-level lives here.

#![forbid(unsafe_code)]

pub mod cc;
pub mod daemon;
pub mod emu;
pub mod experiment;
pub mod tcp;
pub mod testutil;
pub mod udp;

pub use daemon::{
    spawn_node, spawn_onion_relay, spawn_relay, spawn_sharded_relay, DestSessionSpec, NodeHandle,
    NodeSpec, OverlayEvent, RelayDaemon, SessionEvent, SessionHandle, StreamDelivery,
};
pub use experiment::{run_churn_session, ChurnSessionConfig, ChurnSessionReport};
pub use emu::EmulatedNet;
pub use experiment::{
    run_multi_flow, run_onion_transfer, run_session_transfer, run_slicing_transfer,
    MultiFlowReport, SessionTransferConfig, SessionTransferReport, TransferConfig, TransferReport,
};
pub use tcp::TcpNet;
pub use udp::{UdpFaults, UdpNet, UdpStatsSnapshot};

use bytes::Bytes;
use slicing_graph::OverlayAddr;
use tokio::sync::mpsc;

/// A bidirectional attachment point for one overlay node.
///
/// Datagrams cross the port as frozen [`Bytes`]: a daemon hands the
/// transport the packet's wire buffer (no re-encode, no copy on the
/// emulated transport) and receives buffers it can adopt zero-copy via
/// `Packet::from_bytes`.
pub struct NodePort {
    /// The node's overlay address.
    pub addr: OverlayAddr,
    /// Incoming datagrams: `(sender, payload)`.
    pub rx: mpsc::Receiver<(OverlayAddr, Bytes)>,
    /// Outgoing sender handle.
    pub tx: PortSender,
}

/// Cloneable sender half of a [`NodePort`].
#[derive(Clone)]
pub struct PortSender {
    pub(crate) addr: OverlayAddr,
    pub(crate) inner: PortSenderInner,
}

#[derive(Clone)]
pub(crate) enum PortSenderInner {
    Emu(std::sync::Arc<emu::Hub>),
    Tcp(tcp::TcpSender),
    Udp(udp::UdpSender),
}

impl PortSender {
    /// Send `bytes` to `to` (fire-and-forget datagram semantics).
    pub async fn send(&self, to: OverlayAddr, bytes: Bytes) {
        match &self.inner {
            PortSenderInner::Emu(hub) => hub.send(self.addr, to, bytes).await,
            PortSenderInner::Tcp(t) => t.send(self.addr, to, bytes).await,
            PortSenderInner::Udp(u) => u.send(self.addr, to, bytes).await,
        }
    }

    /// Send a batch of frames to one neighbour, draining `frames` (the
    /// caller keeps the Vec's capacity). Every transport consults its
    /// shared state once per batch — the TCP connection cache, the
    /// emulated hub's topology lock, the UDP token bucket — and UDP
    /// additionally puts the whole batch on the wire in one
    /// `sendmmsg`-shaped call. The sharded daemon's egress groups
    /// consecutive same-destination sends into these batches.
    pub async fn send_many(&self, to: OverlayAddr, frames: &mut Vec<Bytes>) {
        match &self.inner {
            PortSenderInner::Emu(hub) => hub.send_many(self.addr, to, frames).await,
            PortSenderInner::Tcp(t) => t.send_many(self.addr, to, frames).await,
            PortSenderInner::Udp(u) => u.send_many(self.addr, to, frames).await,
        }
    }

    /// The transport's current pacing advice for sources feeding this
    /// port, in milliseconds per burst — `None` when the transport has
    /// no congestion signal (emulated and TCP transports, or a UDP link
    /// running uncontended). The session layer folds this into its
    /// `pace_ms` so source admission adapts to transport delay.
    pub fn pace_hint_ms(&self) -> Option<u64> {
        match &self.inner {
            PortSenderInner::Udp(u) => u.pace_hint_ms(),
            _ => None,
        }
    }

    /// The sending node's address.
    pub fn addr(&self) -> OverlayAddr {
        self.addr
    }

    /// Per-neighbour congestion-controller snapshots for this port
    /// (metrics export). Empty on transports without a congestion
    /// signal (emulated, TCP) and on UDP links that have not yet seen
    /// delay feedback.
    pub fn cc_snapshots(&self) -> Vec<(OverlayAddr, cc::CcSnapshot)> {
        match &self.inner {
            PortSenderInner::Udp(u) => u.cc_snapshots(),
            _ => Vec::new(),
        }
    }
}
