//! aarch64 kernels: NEON multi-block ChaCha20 and SHA-256 via the
//! ARMv8 crypto extensions.
//!
//! NEON is baseline on aarch64 so, as in [`slicing_gf`]'s NEON module,
//! there is no width split — ChaCha20 always runs, two blocks per pass
//! (two independent register sets the out-of-order core overlaps). The
//! SHA-256 engine needs the optional `sha2` extension
//! (`vsha256hq_u32`/`vsha256su0q_u32` and friends); when the host lacks
//! it, [`sha256_compress`] declines and the caller's scalar rounds take
//! over while ChaCha20 stays vectorized.
//!
//! Like the GF NEON engines, this module is written-but-uncovered on
//! the x86_64 CI host: the byte-identity proptests and RFC-vector
//! backend sweeps exercise it on any aarch64 checkout.
//!
//! NEON conveniences over the x86 module: rotate-by-16 is a free
//! `vrev32q_u16`, and the remaining rotates are single
//! shift-left + shift-right-insert (`vsriq_n_u32`) pairs instead of
//! shift/shift/or.

use std::arch::aarch64::*;

use crate::sha256::K;

/// "expand 32-byte k", identical to [`crate::chacha20`]'s sigma row.
const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// Rotate each 32-bit lane left by `N`. Register-only, so a *safe*
/// target-feature fn: callers already carry the `neon` feature.
#[inline]
#[target_feature(enable = "neon")]
fn rotl<const N: i32, const INV: i32>(x: uint32x4_t) -> uint32x4_t {
    vsriq_n_u32::<INV>(vshlq_n_u32::<N>(x), x)
}

/// One NEON ChaCha quarter-round over four single-block row registers.
/// Register-only and safe, as [`rotl`].
#[inline]
#[target_feature(enable = "neon")]
fn qround(
    a: uint32x4_t,
    b: uint32x4_t,
    c: uint32x4_t,
    d: uint32x4_t,
) -> (uint32x4_t, uint32x4_t, uint32x4_t, uint32x4_t) {
    let a = vaddq_u32(a, b);
    let d = vreinterpretq_u32_u16(vrev32q_u16(vreinterpretq_u16_u32(veorq_u32(d, a))));
    let c = vaddq_u32(c, d);
    let b = rotl::<12, 20>(veorq_u32(b, c));
    let a = vaddq_u32(a, b);
    let d = rotl::<8, 24>(veorq_u32(d, a));
    let c = vaddq_u32(c, d);
    let b = rotl::<7, 25>(veorq_u32(b, c));
    (a, b, c, d)
}

/// Twenty ChaCha rounds on one block's rows (no feed-forward).
/// Register-only and safe, as [`rotl`].
#[inline]
#[target_feature(enable = "neon")]
fn rounds1x(
    mut a: uint32x4_t,
    mut b: uint32x4_t,
    mut c: uint32x4_t,
    mut d: uint32x4_t,
) -> (uint32x4_t, uint32x4_t, uint32x4_t, uint32x4_t) {
    for _ in 0..10 {
        // Column round, then lane-rotate rows 1–3 so diagonals become
        // columns, diagonal round, rotate back.
        (a, b, c, d) = qround(a, b, c, d);
        b = vextq_u32(b, b, 1);
        c = vextq_u32(c, c, 2);
        d = vextq_u32(d, d, 3);
        (a, b, c, d) = qround(a, b, c, d);
        b = vextq_u32(b, b, 3);
        c = vextq_u32(c, c, 2);
        d = vextq_u32(d, d, 1);
    }
    (a, b, c, d)
}

/// NEON keystream-XOR engine: processes exactly `full` 64-byte blocks
/// starting at block `counter`, two blocks per main-loop pass.
///
/// # Safety
///
/// `data` must be valid for `full * 64` bytes of read+write; the caller
/// must guarantee `counter + full ≤ 2³²` (no 32-bit counter wrap).
/// NEON is baseline on aarch64, so there is no feature precondition.
#[target_feature(enable = "neon")]
unsafe fn chacha_neon(
    key: &[u8; 32],
    nonce: &[u8; 12],
    mut counter: u32,
    data: *mut u8,
    full: usize,
) {
    // SAFETY: per the fn contract every `data` offset below is
    // `< full * 64`; `vld1q`/`vst1q` are unaligned ops; `key`/`nonce`
    // reads stay inside their arrays.
    unsafe {
        let row_a = vld1q_u32(SIGMA.as_ptr());
        let row_b = vreinterpretq_u32_u8(vld1q_u8(key.as_ptr()));
        let row_c = vreinterpretq_u32_u8(vld1q_u8(key.as_ptr().add(16)));
        let n = |i: usize| {
            u32::from_le_bytes([nonce[i * 4], nonce[i * 4 + 1], nonce[i * 4 + 2], nonce[i * 4 + 3]])
        };
        let (n0, n1, n2) = (n(0), n(1), n(2));
        let row_d = |ctr: u32| {
            let words = [ctr, n0, n1, n2];
            vld1q_u32(words.as_ptr())
        };
        let store =
            |p: *mut u8, a: uint32x4_t, b: uint32x4_t, c: uint32x4_t, d: uint32x4_t| {
                let xs = |off: usize, v: uint32x4_t| {
                    let cur = vld1q_u8(p.add(off));
                    vst1q_u8(p.add(off), veorq_u8(cur, vreinterpretq_u8_u32(v)));
                };
                xs(0, a);
                xs(16, b);
                xs(32, c);
                xs(48, d);
            };
        let mut done = 0usize;
        while done + 2 <= full {
            let d0 = row_d(counter);
            let d1 = row_d(counter.wrapping_add(1));
            let (a0, b0, c0, dd0) = rounds1x(row_a, row_b, row_c, d0);
            let (a1, b1, c1, dd1) = rounds1x(row_a, row_b, row_c, d1);
            let p = data.add(done * 64);
            store(
                p,
                vaddq_u32(a0, row_a),
                vaddq_u32(b0, row_b),
                vaddq_u32(c0, row_c),
                vaddq_u32(dd0, d0),
            );
            store(
                p.add(64),
                vaddq_u32(a1, row_a),
                vaddq_u32(b1, row_b),
                vaddq_u32(c1, row_c),
                vaddq_u32(dd1, d1),
            );
            counter = counter.wrapping_add(2);
            done += 2;
        }
        if done < full {
            let d0 = row_d(counter);
            let (a0, b0, c0, dd0) = rounds1x(row_a, row_b, row_c, d0);
            store(
                data.add(done * 64),
                vaddq_u32(a0, row_a),
                vaddq_u32(b0, row_b),
                vaddq_u32(c0, row_c),
                vaddq_u32(dd0, d0),
            );
        }
    }
}

/// XOR ChaCha20 keystream into the full 64-byte blocks of `data`;
/// returns the number of **blocks** processed (the caller's scalar path
/// finishes the tail). The caller must already have ruled out 32-bit
/// counter wrap, as [`crate::chacha20::ChaCha20`] does.
pub(crate) fn chacha_xor(
    key: &[u8; 32],
    nonce: &[u8; 12],
    counter: u32,
    data: &mut [u8],
) -> usize {
    let full = data.len() / 64;
    if full == 0 {
        return 0;
    }
    // SAFETY: NEON is baseline on aarch64; `data` covers `full * 64`
    // bytes; the wrap precondition is the caller's documented contract.
    unsafe {
        chacha_neon(key, nonce, counter, data.as_mut_ptr(), full);
    }
    full
}

/// SHA-256 compression over whole 64-byte blocks with the ARMv8 crypto
/// extensions: four rounds per `vsha256hq`/`vsha256h2q` pair, schedule
/// expanded in-register with `vsha256su0q`/`vsha256su1q`.
///
/// # Safety
///
/// `blocks.len()` must be a multiple of 64; the caller must have
/// verified the `sha2` feature.
#[target_feature(enable = "neon", enable = "sha2")]
unsafe fn sha256_compress_cryptoext(state: &mut [u32; 8], blocks: &[u8]) {
    // SAFETY: per the fn contract, block loads stay inside `blocks` and
    // `state` is 8 words, so both 4-word halves are valid.
    unsafe {
        let mut state0 = vld1q_u32(state.as_ptr()); // abcd
        let mut state1 = vld1q_u32(state.as_ptr().add(4)); // efgh
        let mut off = 0usize;
        while off < blocks.len() {
            let p = blocks.as_ptr().add(off);
            let save0 = state0;
            let save1 = state1;
            // Big-endian words → native lanes.
            let mut m = [
                vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p))),
                vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p.add(16)))),
                vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p.add(32)))),
                vreinterpretq_u32_u8(vrev32q_u8(vld1q_u8(p.add(48)))),
            ];
            for i in 0..16 {
                let wk = vaddq_u32(m[i % 4], vld1q_u32(K.as_ptr().add(i * 4)));
                if i < 12 {
                    // This group's register is free after `wk`; refill it
                    // with schedule group i+4.
                    m[i % 4] = vsha256su1q_u32(
                        vsha256su0q_u32(m[i % 4], m[(i + 1) % 4]),
                        m[(i + 2) % 4],
                        m[(i + 3) % 4],
                    );
                }
                let old0 = state0;
                state0 = vsha256hq_u32(state0, state1, wk);
                state1 = vsha256h2q_u32(state1, old0, wk);
            }
            state0 = vaddq_u32(state0, save0);
            state1 = vaddq_u32(state1, save1);
            off += 64;
        }
        vst1q_u32(state.as_mut_ptr(), state0);
        vst1q_u32(state.as_mut_ptr().add(4), state1);
    }
}

/// Compress whole 64-byte blocks into `state` when the `sha2` crypto
/// extension is present; returns `false` (input untouched) otherwise so
/// the caller falls back to the scalar rounds.
pub(crate) fn sha256_compress(state: &mut [u32; 8], blocks: &[u8]) -> bool {
    debug_assert_eq!(blocks.len() % 64, 0);
    if !crate::simd::caps().sha_rounds {
        return false;
    }
    if blocks.is_empty() {
        return true;
    }
    // SAFETY: `sha_rounds` is only set when the `sha2` feature was
    // detected; `blocks` is whole 64-byte blocks.
    unsafe {
        sha256_compress_cryptoext(state, blocks);
    }
    true
}
