//! Finite-field arithmetic and linear algebra for information slicing.
//!
//! Everything the paper's coding layer needs lives here:
//!
//! * [`Field`] — the trait all coded arithmetic is generic over. The paper
//!   (note 1, §4.3.2) works in `F_{p^q}`; we provide the two binary
//!   extension fields it effectively uses:
//!   [`Gf256`] (byte-oriented payload coding) and [`Gf65536`]
//!   (word-oriented, matching the paper's example of splitting an IP
//!   address into 16-bit low/high words, Eq. 1).
//! * [`Matrix`] — dense row-major matrices with Gauss–Jordan inversion,
//!   rank, multiplication and linear solving. Used for the random
//!   transform `A`, its inverse at the receiving node (`I = A⁻¹ I*`,
//!   §4.3.5), and the redundant `d′ × d` transform of §4.4.
//! * [`mds`] — constructions of `d′ × d` matrices in which *any* `d` rows
//!   are linearly independent ("any d of d′ slices decode", §4.4(b)):
//!   verified-random generation and provably-MDS randomized Cauchy
//!   matrices.
//! * [`bulk`] — the byte-slice kernels (`mul_add_slice`, `mul_slice`,
//!   `xor_slice`) every packet payload in the workspace is coded
//!   through: one L1-resident table row per coefficient, SWAR XOR for
//!   the add-only case.
//!
//! All randomness is taken through `rand::Rng` so protocol code and tests
//! can seed deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bulk;
pub mod field;
pub mod gf256;
pub mod gf65536;
pub mod matrix;
pub mod mds;

pub use field::{axpy, dot, scale, sub_scaled, Field};
pub use gf256::Gf256;
pub use gf65536::Gf65536;
pub use matrix::Matrix;
