//! `slicing-lint` — the workspace's offline static-analysis pass.
//!
//! A slicing relay is an adversarial-input parser: a remote peer hands
//! it every byte it touches. This crate walks the workspace sources
//! with a hand-rolled lexer (no `syn`, no dependencies — it must build
//! first in an offline CI lane) and enforces the project invariants
//! that reviews kept catching by accident:
//!
//! * **`safety-comment`** — every `unsafe` block / fn / impl carries a
//!   `// SAFETY:` comment (or a `# Safety` doc section), and the full
//!   unsafe inventory is written to `UNSAFE_LEDGER.md` so new unsafe is
//!   visible as a diff in review.
//! * **`hot-path`** — a region marked `` lint: hot-path `` (comment
//!   marker above the fn) must not panic (`panic!`/`unwrap`/`expect`/
//!   `assert!` — `debug_assert!` stays allowed) or allocate
//!   (`Vec::new`, `to_vec`, `format!`, …, and `.clone()` on anything
//!   the file does not declare as `Bytes`).
//! * **`guard-across-await`** — a `Mutex`/`RwLock` guard binding that
//!   stays live across an `.await` in async code (the PR 3 TCP-cache
//!   race class, now checked mechanically).
//! * **`vendor-drift`** — `vendor/` sources must not gain `unsafe`
//!   without a matching ledger entry.
//!
//! Any finding can be suppressed in place with
//! `` lint: allow(<rule>) — <justification> `` on the finding's line or
//! the line above; an allow without a justification is itself a finding
//! (`allow-justification`).
//!
//! Run `cargo run -p slicing-lint` locally, `-- --ci` in CI (adds the
//! ledger drift check), `-- --write-ledger` after auditing new unsafe.

pub mod lexer;

use std::collections::HashSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use lexer::{find_tokens, ident_ending_at, ident_starting_at, match_braces, skip_ws, Stripped};

/// Rule id: missing `// SAFETY:` on an `unsafe` site.
pub const RULE_SAFETY: &str = "safety-comment";
/// Rule id: panic/alloc inside a `lint: hot-path` region.
pub const RULE_HOT_PATH: &str = "hot-path";
/// Rule id: lock guard live across an `.await`.
pub const RULE_GUARD_AWAIT: &str = "guard-across-await";
/// Rule id: `vendor/` unsafe not covered by the checked-in ledger.
pub const RULE_VENDOR_DRIFT: &str = "vendor-drift";
/// Rule id: `UNSAFE_LEDGER.md` out of date for first-party sources.
pub const RULE_LEDGER_DRIFT: &str = "ledger-drift";
/// Rule id: malformed `lint: allow(...)` (no justification / unknown rule).
pub const RULE_ALLOW: &str = "allow-justification";

const SUPPRESSIBLE: [&str; 3] = [RULE_SAFETY, RULE_HOT_PATH, RULE_GUARD_AWAIT];

/// What shape of `unsafe` an inventory entry describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeKind {
    /// An `unsafe { … }` block.
    Block,
    /// An `unsafe fn` definition.
    Fn,
    /// An `unsafe impl` (or `unsafe trait`).
    Impl,
    /// An `unsafe extern` block.
    Extern,
}

impl fmt::Display for UnsafeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnsafeKind::Block => "unsafe block",
            UnsafeKind::Fn => "unsafe fn",
            UnsafeKind::Impl => "unsafe impl",
            UnsafeKind::Extern => "unsafe extern",
        })
    }
}

/// One `unsafe` occurrence in the tree (ledger entry).
#[derive(Debug, Clone)]
pub struct UnsafeSite {
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line of the `unsafe` keyword.
    pub line: usize,
    /// Site shape.
    pub kind: UnsafeKind,
    /// Named item (fn name, impl target) when identifiable.
    pub name: Option<String>,
    /// First line of the covering SAFETY comment, when present.
    pub safety: Option<String>,
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`safety-comment`, `hot-path`, …).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Full analysis result.
#[derive(Debug, Default)]
pub struct Report {
    /// All diagnostics, file order.
    pub findings: Vec<Finding>,
    /// Every `unsafe` site seen (annotated or not), file order.
    pub inventory: Vec<UnsafeSite>,
}

impl Report {
    fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
        self.inventory.extend(other.inventory);
    }
}

// ---- allowlist ------------------------------------------------------------

#[derive(Debug)]
struct Allow {
    line: usize,
    rule: String,
    justified: bool,
}

fn parse_allows(stripped: &Stripped, rel: &str, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &stripped.comments {
        let Some(rest) = c.text.strip_prefix("lint: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            findings.push(Finding {
                rule: RULE_ALLOW,
                file: rel.to_string(),
                line: c.line,
                message: "malformed `lint: allow(...)` (missing `)`)".into(),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        if !SUPPRESSIBLE.contains(&rule.as_str()) {
            findings.push(Finding {
                rule: RULE_ALLOW,
                file: rel.to_string(),
                line: c.line,
                message: format!(
                    "`lint: allow({rule})` names an unknown or non-suppressible rule \
                     (expected one of: {})",
                    SUPPRESSIBLE.join(", ")
                ),
            });
            continue;
        }
        let tail = rest[close + 1..].trim();
        let justification = tail
            .trim_start_matches(['—', '-', ':'])
            .trim();
        let justified = !justification.is_empty();
        if !justified {
            findings.push(Finding {
                rule: RULE_ALLOW,
                file: rel.to_string(),
                line: c.line,
                message: format!(
                    "`lint: allow({rule})` needs a justification: \
                     `// lint: allow({rule}) — <why this is sound here>`"
                ),
            });
        }
        out.push(Allow {
            line: c.line,
            rule,
            justified,
        });
    }
    out
}

fn is_allowed(allows: &[Allow], rule: &str, line: usize) -> bool {
    allows.iter().any(|a| {
        a.justified && a.rule == rule && (a.line == line || a.line + 1 == line)
    })
}

// ---- per-file context -----------------------------------------------------

struct FileCtx<'a> {
    rel: &'a str,
    s: Stripped,
    allows: Vec<Allow>,
    /// Brace depth before each byte of the blanked code.
    depth: Vec<u32>,
}

impl<'a> FileCtx<'a> {
    fn new(rel: &'a str, src: &str, findings: &mut Vec<Finding>) -> Self {
        let s = lexer::strip(src);
        let allows = parse_allows(&s, rel, findings);
        let mut depth = Vec::with_capacity(s.code.len() + 1);
        let mut d = 0u32;
        for &b in s.code.as_bytes() {
            depth.push(d);
            match b {
                b'{' => d += 1,
                b'}' => d = d.saturating_sub(1),
                _ => {}
            }
        }
        depth.push(d);
        FileCtx {
            rel,
            s,
            allows,
            depth,
        }
    }

    fn comment_on(&self, line: usize) -> impl Iterator<Item = &str> {
        self.s
            .comments
            .iter()
            .filter(move |c| c.line == line)
            .map(|c| c.text.as_str())
    }

    /// Does `line` (or the contiguous comment/attribute run above it)
    /// carry a SAFETY marker? Returns the marker text when found.
    fn safety_above(&self, line: usize) -> Option<String> {
        let has_safety = |t: &str| {
            t.contains("SAFETY:") || t.contains("SAFETY —") || t.contains("# Safety")
        };
        for t in self.comment_on(line) {
            if has_safety(t) {
                return Some(t.to_string());
            }
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let code = self.s.code_line(l).trim().to_string();
            let pass_through = code.is_empty() || code.starts_with('#');
            if !pass_through {
                return None;
            }
            for t in self.comment_on(l) {
                if has_safety(t) {
                    return Some(t.to_string());
                }
            }
            // A fully blank line (no comment either) ends the run.
            if code.is_empty() && self.comment_on(l).next().is_none() {
                return None;
            }
        }
        None
    }
}

// ---- rule 1: safety-comment + inventory -----------------------------------

fn excerpt(text: &str) -> String {
    let t = text
        .trim_start_matches("SAFETY:")
        .trim_start_matches("SAFETY —")
        .trim();
    let mut e: String = t.chars().take(90).collect();
    if t.chars().count() > 90 {
        e.push('…');
    }
    e
}

fn rule_safety(ctx: &FileCtx<'_>, report: &mut Report) {
    let code = &ctx.s.code;
    for pos in find_tokens(code, "unsafe", true, true) {
        let line = ctx.s.line_of(pos);
        let after = skip_ws(code, pos + "unsafe".len());
        let (kind, name) = match ident_starting_at(code, after) {
            Some("fn") => {
                let n = ident_starting_at(code, skip_ws(code, after + 2));
                (UnsafeKind::Fn, n.map(str::to_string))
            }
            Some("impl" | "trait") => {
                let head: String = code[after..]
                    .chars()
                    .take_while(|&c| c != '{' && c != '\n')
                    .collect();
                (UnsafeKind::Impl, Some(head.trim().to_string()))
            }
            Some("extern") => (UnsafeKind::Extern, None),
            _ => (UnsafeKind::Block, None),
        };
        let safety = ctx.safety_above(line);
        if safety.is_none() && !is_allowed(&ctx.allows, RULE_SAFETY, line) {
            report.findings.push(Finding {
                rule: RULE_SAFETY,
                file: ctx.rel.to_string(),
                line,
                message: format!(
                    "{kind}{} has no `// SAFETY:` comment (state the invariant that \
                     makes it sound, directly above the site)",
                    name.as_deref()
                        .map(|n| format!(" `{n}`"))
                        .unwrap_or_default()
                ),
            });
        }
        report.inventory.push(UnsafeSite {
            file: ctx.rel.to_string(),
            line,
            kind,
            name,
            safety: safety.as_deref().map(excerpt),
        });
    }
}

// ---- rule 2: hot-path discipline ------------------------------------------

/// Calls that panic on adversarial input. `debug_assert!` is explicitly
/// fine (left-boundary check rejects it for the `assert!` needles).
const PANICKY: [&str; 7] = [
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
    "assert!",
    "assert_eq!",
    "assert_ne!",
];

/// Allocation constructors a per-packet region must not reach.
const ALLOCATING: [&str; 17] = [
    "Vec::new(",
    "VecDeque::new(",
    "String::new(",
    "HashMap::new(",
    "HashSet::new(",
    "BTreeMap::new(",
    "BTreeSet::new(",
    "Box::new(",
    "Rc::new(",
    "Arc::new(",
    "String::from(",
    "vec!",
    "format!",
    ".to_vec()",
    ".to_string()",
    ".to_owned()",
    ".collect(",
];

/// Identifiers this file declares with type `Bytes` (params, fields,
/// `let` ascriptions): `.clone()` on these is an O(1) refcount bump and
/// exempt from the hot-path allocation rule.
fn bytes_idents(code: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    for pos in find_tokens(code, "Bytes", true, true) {
        let cb = code.as_bytes();
        let mut i = pos;
        // Walk left over whitespace and at most one `&` / `&mut`.
        let skip_back_ws = |i: &mut usize| {
            while *i > 0 && cb[*i - 1].is_ascii_whitespace() {
                *i -= 1;
            }
        };
        skip_back_ws(&mut i);
        if i >= 3 && &code[i - 3..i] == "mut" {
            i -= 3;
            skip_back_ws(&mut i);
        }
        if i >= 1 && cb[i - 1] == b'&' {
            i -= 1;
            skip_back_ws(&mut i);
        }
        if i == 0 || cb[i - 1] != b':' {
            continue;
        }
        i -= 1;
        skip_back_ws(&mut i);
        if let Some(id) = ident_ending_at(code, i) {
            out.insert(id.to_string());
        }
    }
    out
}

fn rule_hot_path(ctx: &FileCtx<'_>, report: &mut Report) {
    let code = &ctx.s.code;
    let markers: Vec<usize> = ctx
        .s
        .comments
        .iter()
        .filter(|c| c.text.starts_with("lint: hot-path"))
        .map(|c| c.line)
        .collect();
    if markers.is_empty() {
        return;
    }
    let bytes_ids = bytes_idents(code);
    let mut push = |line: usize, message: String| {
        if !is_allowed(&ctx.allows, RULE_HOT_PATH, line) {
            report.findings.push(Finding {
                rule: RULE_HOT_PATH,
                file: ctx.rel.to_string(),
                line,
                message,
            });
        }
    };
    for marker_line in markers {
        let from = ctx.s.line_starts[marker_line - 1];
        let Some((open, close)) = match_braces(code, from) else {
            continue;
        };
        let fn_name = find_tokens(&code[from..open], "fn", true, true)
            .first()
            .and_then(|&p| ident_starting_at(code, skip_ws(code, from + p + 2)))
            .unwrap_or("<region>")
            .to_string();
        let region = &code[open..=close];
        let at_line = |off: usize| ctx.s.line_of(open + off);
        for needle in PANICKY {
            for p in find_tokens(region, needle, true, false) {
                push(
                    at_line(p),
                    format!(
                        "`{needle}` in hot-path region `{fn_name}` — a forged packet \
                         must never panic a relay; return a typed error or drop-and-count"
                    ),
                );
            }
        }
        for needle in [".unwrap()", ".expect("] {
            for p in find_tokens(region, needle, false, false) {
                push(
                    at_line(p),
                    format!(
                        "`{}` in hot-path region `{fn_name}` — convert to a typed error \
                         or a drop-and-count path",
                        needle.trim_end_matches('(')
                    ),
                );
            }
        }
        for needle in ALLOCATING {
            // Method-style needles (`.to_vec()`, …) follow a receiver
            // identifier; only bare constructors need a left boundary.
            let left_bound = !needle.starts_with('.');
            for p in find_tokens(region, needle, left_bound, false) {
                push(
                    at_line(p),
                    format!(
                        "`{}` allocates in hot-path region `{fn_name}` — reuse shard \
                         scratch or preallocate at setup",
                        needle.trim_end_matches('(')
                    ),
                );
            }
        }
        for p in find_tokens(region, ".clone()", false, false) {
            let recv = ident_ending_at(region, p);
            if let Some(r) = recv {
                if bytes_ids.contains(r) {
                    continue; // Bytes clone: O(1) refcount bump.
                }
            }
            push(
                at_line(p),
                format!(
                    "`.clone()` on `{}` in hot-path region `{fn_name}` — only \
                     refcounted `Bytes` clones are free; restructure or justify with \
                     an allow",
                    recv.unwrap_or("<expr>")
                ),
            );
        }
    }
}

// ---- rule 3: guard-across-await -------------------------------------------

fn rule_guard_await(ctx: &FileCtx<'_>, report: &mut Report) {
    let code = &ctx.s.code;
    let cb = code.as_bytes();
    let mut regions: Vec<(usize, usize)> = Vec::new();
    for pos in find_tokens(code, "async", true, true) {
        let after = skip_ws(code, pos + 5);
        let is_async_ctx = matches!(ident_starting_at(code, after), Some("fn" | "move"))
            || cb.get(after) == Some(&b'{');
        if !is_async_ctx {
            continue;
        }
        if let Some((open, close)) = match_braces(code, pos) {
            regions.push((open, close));
        }
    }
    let mut seen: HashSet<usize> = HashSet::new();
    for (open, close) in regions {
        for needle in [".lock()", ".read()", ".write()"] {
            for p in find_tokens(&code[open..close], needle, false, false) {
                let at = open + p;
                // Statement start: last `;`/`{`/`}` before the lock call.
                let stmt_start = code[..at]
                    .rfind([';', '{', '}'])
                    .map(|i| i + 1)
                    .unwrap_or(0);
                let stmt_head = &code[stmt_start..at];
                let lets = find_tokens(stmt_head, "let", true, true);
                let Some(&let_off) = lets.first() else {
                    continue; // temporary guard: dropped at end of statement
                };
                let line = ctx.s.line_of(at);
                if seen.contains(&line) {
                    continue;
                }
                // `if let` / `while let`: the guard is a temporary whose
                // scope is the conditional's block — flag only if that
                // block itself suspends.
                let conditional = ["if", "while"].iter().any(|kw| {
                    find_tokens(stmt_head, kw, true, true)
                        .iter()
                        .any(|&k| k < let_off)
                });
                if conditional {
                    if let Some((bopen, bclose)) = match_braces(code, at) {
                        if bclose <= close
                            && !find_tokens(&code[bopen..bclose], ".await", false, true)
                                .is_empty()
                            && !is_allowed(&ctx.allows, RULE_GUARD_AWAIT, line)
                        {
                            seen.insert(line);
                            report.findings.push(Finding {
                                rule: RULE_GUARD_AWAIT,
                                file: ctx.rel.to_string(),
                                line,
                                message: format!(
                                    "a `{needle}` guard is borrowed for this whole \
                                     conditional, which `.await`s inside — take the \
                                     guard in a scope that ends before suspending"
                                ),
                            });
                        }
                    }
                    continue;
                }
                let mut ni = skip_ws(code, stmt_start + let_off + 3);
                if ident_starting_at(code, ni) == Some("mut") {
                    ni = skip_ws(code, ni + 3);
                }
                // Unwrap constructor patterns: `let Some(g)` / `let Ok(mut g)`.
                let mut name = ident_starting_at(code, ni);
                while let Some(n) = name {
                    let first = n.chars().next().unwrap_or('a');
                    let after = skip_ws(code, ni + n.len());
                    if first.is_ascii_uppercase() && cb.get(after) == Some(&b'(') {
                        ni = skip_ws(code, after + 1);
                        if ident_starting_at(code, ni) == Some("mut") {
                            ni = skip_ws(code, ni + 3);
                        }
                        name = ident_starting_at(code, ni);
                    } else {
                        break;
                    }
                }
                let Some(name) = name else {
                    continue;
                };
                if name == "_" {
                    continue;
                }
                let bind_depth = ctx.depth[at];
                // End of the binding statement: next `;` at binding depth.
                let mut i = at;
                while i < close && !(cb[i] == b';' && ctx.depth[i] == bind_depth) {
                    i += 1;
                }
                // Scan the rest of the guard's scope.
                let mut finding = None;
                while i < close && ctx.depth[i] >= bind_depth {
                    if cb[i] == b'.' && code[i..].starts_with(".await") {
                        let end = i + 6;
                        if end >= cb.len() || !cb[end].is_ascii_alphanumeric() && cb[end] != b'_' {
                            finding = Some(ctx.s.line_of(i));
                            break;
                        }
                    }
                    if cb[i] == b'd' && code[i..].starts_with("drop") {
                        let j = skip_ws(code, i + 4);
                        if cb.get(j) == Some(&b'(') {
                            let k = skip_ws(code, j + 1);
                            if ident_starting_at(code, k) == Some(name) {
                                break; // explicitly released before any await
                            }
                        }
                    }
                    i += 1;
                }
                if let Some(await_line) = finding {
                    if !is_allowed(&ctx.allows, RULE_GUARD_AWAIT, line) {
                        seen.insert(line);
                        report.findings.push(Finding {
                            rule: RULE_GUARD_AWAIT,
                            file: ctx.rel.to_string(),
                            line,
                            message: format!(
                                "guard `{name}` (bound here via `{needle}`) is still live \
                                 across the `.await` on line {await_line} — scope it in a \
                                 block or `drop({name})` first (holding a sync lock across \
                                 a suspension point can deadlock the executor)"
                            ),
                        });
                    }
                }
            }
        }
    }
}

// ---- entry points ---------------------------------------------------------

/// Analyze one file's source text under a workspace-relative label.
pub fn analyze_source(rel: &str, src: &str) -> Report {
    let mut report = Report::default();
    let mut pre_findings = Vec::new();
    let ctx = FileCtx::new(rel, src, &mut pre_findings);
    report.findings = pre_findings;
    rule_safety(&ctx, &mut report);
    rule_hot_path(&ctx, &mut report);
    rule_guard_await(&ctx, &mut report);
    report
}

/// Directories under the workspace root that are walked.
pub const SCAN_DIRS: [&str; 5] = ["crates", "src", "vendor", "tests", "examples"];

fn walk(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<io::Result<_>>()?;
    entries.sort_by_key(|e| e.path());
    for e in entries {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            // `fixtures/` trees hold deliberate violations for the
            // analyzer's own tests; `target/` is build output.
            if name == "fixtures" || name == "target" || name.starts_with('.') {
                continue;
            }
            walk(&p, out)?;
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Analyze the whole workspace tree rooted at `root`.
pub fn analyze_tree(root: &Path) -> io::Result<Report> {
    let mut files = Vec::new();
    for d in SCAN_DIRS {
        let p = root.join(d);
        if p.is_dir() {
            walk(&p, &mut files)?;
        }
    }
    let mut report = Report::default();
    for f in &files {
        let src = fs::read_to_string(f)?;
        let rel = f
            .strip_prefix(root)
            .unwrap_or(f)
            .to_string_lossy()
            .replace('\\', "/");
        report.merge(analyze_source(&rel, &src));
    }
    Ok(report)
}

// ---- ledger ---------------------------------------------------------------

/// Name of the checked-in unsafe inventory at the workspace root.
pub const LEDGER_FILE: &str = "UNSAFE_LEDGER.md";

fn entry_line(site: &UnsafeSite) -> String {
    format!(
        "- {} L{} {}{}{}",
        site.file,
        site.line,
        site.kind,
        site.name
            .as_deref()
            .map(|n| format!(" `{n}`"))
            .unwrap_or_default(),
        site.safety
            .as_deref()
            .map(|s| format!(" — SAFETY: {s}"))
            .unwrap_or_else(|| " — (UNANNOTATED)".to_string()),
    )
}

/// Render the canonical `UNSAFE_LEDGER.md` text for an inventory.
pub fn render_ledger(inventory: &[UnsafeSite]) -> String {
    let files: Vec<&str> = {
        let mut seen = Vec::new();
        for s in inventory {
            if !seen.contains(&s.file.as_str()) {
                seen.push(s.file.as_str());
            }
        }
        seen
    };
    let vendor = inventory
        .iter()
        .filter(|s| s.file.starts_with("vendor/"))
        .count();
    let mut out = String::new();
    out.push_str("# UNSAFE_LEDGER\n\n");
    out.push_str(
        "Machine-written inventory of every `unsafe` site in the workspace.\n\
         Regenerate with `cargo run -p slicing-lint -- --write-ledger`; CI\n\
         (`cargo run -p slicing-lint -- --ci`) fails when this file drifts\n\
         from the tree, so any new `unsafe` shows up as a reviewable diff\n\
         here. `vendor/` entries are additionally policed by the\n\
         `vendor-drift` rule (vendored crates are `#![forbid(unsafe_code)]`\n\
         today and must stay that way unless a ledger entry justifies it).\n\n",
    );
    out.push_str(&format!(
        "Total: {} unsafe sites across {} files ({} in vendor/).\n",
        inventory.len(),
        files.len(),
        vendor
    ));
    for f in files {
        out.push_str(&format!("\n## {f}\n\n"));
        for s in inventory.iter().filter(|s| s.file == f) {
            out.push_str(&entry_line(s));
            out.push('\n');
        }
    }
    out
}

/// Compare a checked-in ledger against the freshly generated one;
/// returns drift findings (empty when current).
pub fn diff_ledger(existing: &str, generated: &str) -> Vec<Finding> {
    let entries = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.starts_with("- "))
            .map(str::to_string)
            .collect()
    };
    let old: HashSet<String> = entries(existing).into_iter().collect();
    let new_entries = entries(generated);
    let newset: HashSet<String> = new_entries.iter().cloned().collect();
    let mut findings = Vec::new();
    let classify = |entry: &str| {
        if entry.starts_with("- vendor/") {
            RULE_VENDOR_DRIFT
        } else {
            RULE_LEDGER_DRIFT
        }
    };
    for e in &new_entries {
        if !old.contains(e) {
            findings.push(Finding {
                rule: classify(e),
                file: LEDGER_FILE.to_string(),
                line: 1,
                message: format!(
                    "unsafe site in tree but not in ledger: `{}` — audit it, then \
                     run `cargo run -p slicing-lint -- --write-ledger`",
                    e.trim_start_matches("- ")
                ),
            });
        }
    }
    for e in &old {
        if !newset.contains(e) {
            findings.push(Finding {
                rule: classify(e),
                file: LEDGER_FILE.to_string(),
                line: 1,
                message: format!(
                    "stale ledger entry (site moved or gone): `{}` — run \
                     `cargo run -p slicing-lint -- --write-ledger`",
                    e.trim_start_matches("- ")
                ),
            });
        }
    }
    findings
}
