//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements exactly the surface the workspace uses: [`RngCore`],
//! [`Rng`], [`SeedableRng`], [`rngs::StdRng`], [`thread_rng`], and
//! [`seq::SliceRandom`]. `StdRng` is xoshiro256** seeded through
//! SplitMix64 — deterministic, fast, and good enough for protocol
//! randomness and tests (it is *not* a CSPRNG; the workspace's
//! `slicing-crypto` provides keyed randomness where security matters).

#![forbid(unsafe_code)]

use std::fmt;

/// Error type for fallible generation (never produced by our sources).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error")
    }
}

impl std::error::Error for Error {}

/// Core random source: raw integer and byte output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill (always succeeds here).
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Marker for cryptographically secure sources.
pub trait CryptoRng {}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $m:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$m() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64, usize => next_u64,
                   isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

impl<A: Standard, B: Standard> Standard for (A, B) {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (A::sample(rng), B::sample(rng))
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<u128> for std::ops::Range<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        assert!(self.start < self.end, "empty range in gen_range");
        let span = self.end - self.start;
        self.start + uniform_u128(rng, span)
    }
}

impl SampleRange<u128> for std::ops::RangeInclusive<u128> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u128 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        let span = hi - lo;
        if span == u128::MAX {
            return u128::sample(rng);
        }
        lo + uniform_u128(rng, span + 1)
    }
}

/// Uniform sample in `[0, span)` for 128-bit spans by rejection.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return u128::sample(rng) & (span - 1);
    }
    let zone = u128::MAX - (u128::MAX % span) - 1;
    loop {
        let v = u128::sample(rng);
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Unbiased uniform sample in `[0, span)` (`span > 0`) by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX % span) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Sample a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fill a byte slice (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable deterministic generators.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Construct from a fresh nondeterministic seed.
    fn from_entropy() -> Self {
        Self::seed_from_u64(entropy_u64())
    }
}

fn entropy_u64() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let c = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let tid = {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        h.finish()
    };
    t ^ c.rotate_left(32) ^ tid
}

pub mod rngs {
    //! Provided generator implementations.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256**.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9E3779B97F4A7C15, 0xBF58476D1CE4E5B9, 0x94D049BB133111EB, 1];
            }
            StdRng { s }
        }
    }

    /// Nondeterministically seeded generator behind [`super::thread_rng`].
    #[derive(Clone, Debug)]
    pub struct ThreadRng(pub(crate) StdRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

/// A fresh nondeterministically-seeded generator.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng(rngs::StdRng::seed_from_u64(entropy_u64()))
}

/// Sample one value with the [`Standard`] distribution.
pub fn random<T: Standard>() -> T {
    thread_rng().gen()
}

pub mod seq {
    //! Random selection and ordering over slices.

    use super::{Rng, RngCore};

    /// Random element selection and in-place shuffling.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = rng.gen_range(1..=255);
            assert!(v >= 1);
            let w: usize = rng.gen_range(0..10);
            assert!(w < 10);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left identity order");
    }

    #[test]
    fn choose_covers_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }
}
