//! From-scratch cryptographic substrate for the information-slicing stack.
//!
//! The paper needs two kinds of cryptography:
//!
//! 1. **Symmetric keys** delivered to each relay/destination during graph
//!    establishment (§4.2.1, §4.3.1) and used to encrypt data messages.
//!    Provided here: [`chacha20`] (RFC 8439 stream cipher), [`sha256`]
//!    (FIPS 180-4), [`hmac`] (RFC 2104), [`hkdf`] (RFC 5869), and an
//!    encrypt-then-MAC [`aead`] built from those pieces.
//! 2. **Public-key operations** for the *onion-routing baseline* (§2,
//!    §7.2: onion routing uses PKC for route setup, symmetric session keys
//!    for data). Provided here: [`bignum`] multi-precision arithmetic,
//!    [`prime`] (Miller–Rabin generation) and [`rsa`] (raw RSA with
//!    configurable, deliberately *toy-sized* moduli so benchmarks finish
//!    quickly).
//!
//! Everything is implemented from the specifications and validated against
//! the RFC/FIPS test vectors in the unit tests. **None of this is intended
//! as production cryptography** — it exists because the reproduction must
//! be self-contained and the approved offline crate list has no crypto
//! crates. The protocol-relevant property is the *cost structure*
//! (asymmetric setup vs symmetric data path), which these implementations
//! preserve.

// Unsafe is denied crate-wide; only the `simd` arch kernels opt out
// (module-scoped `#[allow(unsafe_code)]`), confining `std::arch`
// intrinsics behind safe wrappers exactly as `slicing-gf` does. Every
// unsafe block carries a SAFETY contract audited by `slicing-lint`
// (see UNSAFE_LEDGER.md).
#![deny(unsafe_code)]

pub mod aead;
pub mod bignum;
pub mod chacha20;
pub mod hkdf;
pub mod hmac;
pub mod prime;
pub mod rng;
pub mod rsa;
pub mod sha256;
pub mod simd;

pub use aead::{open, seal, SealError, SealingKey};
pub use bignum::BigUint;
pub use chacha20::{ChaCha20, KeystreamExhausted};
pub use hmac::HmacKey;
pub use rng::ChaChaRng;
pub use rsa::{RsaKeyPair, RsaPublicKey};
pub use sha256::Sha256;
pub use simd::Backend;

/// A 256-bit symmetric key, as distributed to each node in its
/// per-node information `I_x` ("Secret Key", §4.3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymmetricKey(pub [u8; 32]);

impl SymmetricKey {
    /// Sample a fresh random key.
    pub fn random<R: rand::Rng + ?Sized>(rng: &mut R) -> Self {
        let mut k = [0u8; 32];
        rng.fill_bytes(&mut k);
        SymmetricKey(k)
    }

    /// Derive a sub-key bound to a context label (HKDF-Expand).
    pub fn derive(&self, context: &[u8]) -> SymmetricKey {
        let mut out = [0u8; 32];
        hkdf::expand(&self.0, context, &mut out);
        SymmetricKey(out)
    }
}

impl std::fmt::Debug for SymmetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SymmetricKey(..)")
    }
}
