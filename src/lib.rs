//! # Information Slicing
//!
//! A complete Rust implementation of *Information Slicing: Anonymity
//! Using Unreliable Overlays* (Katti, Cohen, Katabi — NSDI 2007 /
//! MIT-CSAIL-TR-2007-013): anonymous, confidential, churn-resilient
//! communication over peer-to-peer overlays **without any public-key
//! cryptography**.
//!
//! Instead of onion layers, the source multiplies its message by a random
//! invertible matrix over GF(2⁸), splits the result into `d` slices, and
//! routes them along vertex-disjoint overlay paths that meet only at the
//! destination. Relays learn nothing but their own parents and children;
//! an attacker holding fewer than `d` slices learns *nothing at all*
//! (pi-security). Redundant coding (`d′ > d`) plus in-network
//! regeneration (random linear network coding) makes flows survive node
//! churn.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`gf`] | GF(2⁸)/GF(2¹⁶) arithmetic, matrices, super-regular generators |
//! | [`crypto`] | SHA-256, HMAC, HKDF, ChaCha20, AEAD, bignum, toy RSA |
//! | [`codec`] | slice encode/decode, network re-coding, per-hop transforms |
//! | [`wire`] | packet format (flow-id + constant-size slots) |
//! | [`graph`] | Algorithm 1: stages, slice-maps, data-maps, per-node info |
//! | [`core`] | sans-IO protocol engine: source, relay, destination |
//! | [`onion`] | onion-routing baselines (standard + erasure-coded) |
//! | [`anonymity`] | entropy metric, attacker model, Figs. 7–10 engine |
//! | [`sim`] | churn models, Eqs. 6–7, AS-diverse selection, WAN profiles |
//! | [`overlay`] | tokio runtime: emulated + TCP transports, daemons |
//!
//! ## Quickstart
//!
//! ```
//! use information_slicing::core::{GraphParams, OverlayAddr, SourceSession};
//! use information_slicing::core::testnet::TestNet;
//!
//! // An overlay of candidate relays, a destination, and the source's
//! // pseudo-source addresses (§3: home + work, a friend, a cafe...).
//! let candidates: Vec<OverlayAddr> = (0..30).map(|i| OverlayAddr(100 + i)).collect();
//! let pseudo: Vec<OverlayAddr> = vec![OverlayAddr(1), OverlayAddr(2)];
//! let bob = OverlayAddr(99);
//!
//! // Establish a forwarding graph (L = 4 stages, split factor d = 2).
//! let (mut alice, setup) = SourceSession::establish(
//!     GraphParams::new(4, 2), &pseudo, &candidates, bob, 7,
//! ).unwrap();
//!
//! // Drive it through the in-memory test network.
//! let mut all_nodes = candidates.clone();
//! all_nodes.push(bob);
//! let mut net = TestNet::new(&all_nodes, 7);
//! net.submit(setup);
//! net.run_to_quiescence(Some(&mut alice));
//!
//! // Send an anonymous, confidential message.
//! let (_, packets) = alice.send_message(b"Let's meet at 5pm").expect("within chunk budget");
//! net.submit(packets);
//! net.run_to_quiescence(Some(&mut alice));
//! assert_eq!(net.messages_for(bob)[0].1, b"Let's meet at 5pm");
//! ```

#![forbid(unsafe_code)]

pub use slicing_anonymity as anonymity;
pub use slicing_codec as codec;
pub use slicing_core as core;
pub use slicing_crypto as crypto;
pub use slicing_gf as gf;
pub use slicing_graph as graph;
pub use slicing_onion as onion;
pub use slicing_overlay as overlay;
pub use slicing_sim as sim;
pub use slicing_wire as wire;
